//! Procedures 2 and 3 of the paper: circuit optimization by replacing
//! subcircuits with comparison units.
//!
//! Both procedures traverse the circuit from the primary outputs towards
//! the primary inputs in reverse BFS (level) order. At every *marked* gate
//! output `g` they enumerate candidate subcircuits (cones rooted at `g`
//! with at most `K` inputs), keep those whose function at `g` is a
//! comparison function, and score replacing them with the corresponding
//! comparison unit:
//!
//! - **Procedure 2** maximizes the reduction in equivalent 2-input gates,
//!   breaking ties by the number of paths at `g`. Gates of the old cone
//!   that fan out elsewhere are excluded from the removable count, exactly
//!   as in the paper (Section 4.1).
//! - **Procedure 3** minimizes the number of paths at `g` (using the
//!   Section 2 identity `N_p(g) = Σ N_p(I_i)·K_p(I_i)`), with no secondary
//!   gate objective (Section 4.2).
//! - **Combined** (Section 4.3) maximizes a weighted sum of both
//!   improvements.
//!
//! After a replacement, the inputs of the selected subcircuit are marked
//! for further processing, and the internal gates that the replacement made
//! dead are never revisited. The whole procedure repeats in passes until a
//! pass yields no improvement. Every pass is (optionally but by default)
//! verified equivalent to the input circuit with BDDs.
//!
//! Resynthesis is **transactional per pass**, on the edit journal of
//! [`sft_netlist`]: each pass opens an edit transaction on the live circuit
//! and is committed only after BDD verification succeeds. BDD blowup, a
//! verification mismatch, budget exhaustion, or cancellation rolls the
//! journal back to the last verified state — O(#edits of the pass), not
//! O(circuit) — and ends the run with a [`StopReason`] in the report; never
//! an error that discards completed passes. The procedures are anytime
//! algorithms, and the API preserves that property.
//!
//! The implementation is split along the transactional seams:
//!
//! - [`candidates`](self) — cone enumeration, identification, and scoring
//!   (read-only on the circuit; fans out to worker threads);
//! - [`pass`](self) — one output-to-input traversal applying accepted
//!   replacements through journaled edits;
//! - [`commit`](self) — the pass loop: journal checkpoints, dirty-region
//!   diffing against the journal, incremental BDD verification, and
//!   commit/rollback.

mod candidates;
mod commit;
mod pass;

use sft_budget::{Budget, StopReason};
use sft_netlist::{Circuit, PathCount};
use sft_par::Jobs;
use std::fmt;

use crate::IdentifyOptions;

/// What a candidate replacement is scored by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Procedure 2: maximize the gate reduction, tie-break on paths.
    #[default]
    Gates,
    /// Procedure 3: minimize the paths at the replaced line.
    Paths,
    /// Section 4.3: maximize `gate_weight·Δgates + path_weight·Δpaths`.
    Combined {
        /// Weight of the equivalent-2-input-gate reduction.
        gate_weight: u32,
        /// Weight of the path-count reduction at the line.
        path_weight: u32,
    },
}

/// Options controlling the resynthesis procedures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResynthOptions {
    /// The input limit `K` of candidate subcircuits (the paper uses 5–7).
    pub max_inputs: usize,
    /// Cap on candidate subcircuits enumerated per gate output.
    pub max_candidates_per_gate: usize,
    /// The optimization objective.
    pub objective: Objective,
    /// Comparison-function identification options.
    pub identify: IdentifyOptions,
    /// Maximum number of passes.
    pub max_passes: usize,
    /// Verify circuit equivalence with BDDs after every pass.
    pub verify_each_pass: bool,
    /// Node cap of the verification BDD manager. Verification BDDs for the
    /// reference and every pass result accumulate in one hash-consed
    /// manager; exceeding the cap rolls the run back to the last verified
    /// circuit with [`StopReason::BddBlowup`].
    pub verify_node_limit: usize,
    /// Use satisfiability don't-cares (reachable cone-input combinations)
    /// during identification — the first "issue to be investigated" of the
    /// paper's concluding remarks. Computed exactly with BDDs; expensive,
    /// off by default.
    pub use_satisfiability_dont_cares: bool,
    /// Allow replacing a subcircuit by an OR of up to this many comparison
    /// units when its function is not a comparison function — the paper's
    /// concluding remark 2. `1` (the default) reproduces the paper's
    /// single-unit procedure.
    pub max_cover_units: usize,
    /// Also search input polarities during identification: a cone whose
    /// function becomes a comparison function after complementing some of
    /// its inputs is replaced by a unit fed through inverters (which cost
    /// no equivalent 2-input gates and add no paths). A strict
    /// generalization of Definition 1; off by default to match the paper.
    pub allow_input_negation: bool,
    /// Worker threads scoring candidate cones concurrently. Scoring is
    /// read-only, results are merged in enumeration order, and all circuit
    /// edits stay on the calling thread, so the resynthesized circuit is
    /// identical at any value when the budget is unlimited; under a step
    /// budget, workers may overshoot the step limit by up to `jobs - 1`
    /// in-flight scoring steps. Ignored (treated as serial) while
    /// `use_satisfiability_dont_cares` is on, since SDC extraction shares
    /// one mutable BDD manager.
    pub jobs: Jobs,
    /// Memoize exact comparison-function identification in the
    /// process-wide tables of [`crate::memo`]: negative verdicts shared
    /// per P-class, positive certificates replayed per exact truth table.
    /// Identification answers — certificates included — and the resulting
    /// netlist are bit-identical to an unmemoized run; repeated cone
    /// functions (within a circuit, across passes, and across circuits)
    /// skip the exponential decision procedure. Only
    /// [`IdentifyMethod::Exact`](crate::IdentifyMethod::Exact) queries are
    /// cached — see the module docs.
    /// On by default.
    pub memoize_identification: bool,
    /// Skip re-scoring gates whose rejection provably replays: a gate
    /// rejected in a pass is not re-scored in the next pass unless the
    /// modified region (the replacements, their fanin frontier, and
    /// everything downstream) reaches its scoring environment. The final
    /// netlist is identical to a full re-walk; under a *step* budget the
    /// run consumes fewer steps and can therefore progress further before
    /// exhaustion. On by default.
    pub incremental_rescoring: bool,
    /// Compact the cumulative verification BDD manager after every
    /// committed pass, keeping only the reference and the committed
    /// circuit's node BDDs. Bounds the manager (and its operation caches)
    /// by the live working set instead of the whole run's history;
    /// [`ResynthReport::verify_nodes`] reports the peak either way. Off, the
    /// manager grows monotonically (the pre-compaction behavior). On by
    /// default.
    pub compact_verifier: bool,
}

impl Default for ResynthOptions {
    fn default() -> Self {
        ResynthOptions {
            max_inputs: 5,
            max_candidates_per_gate: 200,
            objective: Objective::Gates,
            identify: IdentifyOptions::default(),
            max_passes: 16,
            verify_each_pass: true,
            verify_node_limit: sft_bdd::DEFAULT_NODE_LIMIT,
            use_satisfiability_dont_cares: false,
            max_cover_units: 1,
            allow_input_negation: false,
            jobs: Jobs::serial(),
            memoize_identification: true,
            incremental_rescoring: true,
            compact_verifier: true,
        }
    }
}

/// Errors from resynthesis.
///
/// Only genuinely unrecoverable conditions are errors: a circuit that fails
/// validation (or a structural edit that cannot be applied). Recoverable
/// interruptions — BDD blowup, verification mismatch, budget exhaustion,
/// cancellation — roll back to the last verified circuit and are reported
/// through [`ResynthReport::stop_reason`] instead.
#[derive(Debug)]
pub enum ResynthError {
    /// The circuit failed validation before or during resynthesis.
    Netlist(sft_netlist::NetlistError),
}

impl fmt::Display for ResynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResynthError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for ResynthError {}

impl From<sft_netlist::NetlistError> for ResynthError {
    fn from(e: sft_netlist::NetlistError) -> Self {
        ResynthError::Netlist(e)
    }
}

/// Summary of a resynthesis run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResynthReport {
    /// Committed (verified) passes.
    pub passes: usize,
    /// Subcircuit replacements in committed passes.
    pub replacements: usize,
    /// Equivalent 2-input gates before.
    pub gates_before: u64,
    /// Equivalent 2-input gates after.
    pub gates_after: u64,
    /// Paths before (saturation-aware).
    pub paths_before: PathCount,
    /// Paths after (saturation-aware).
    pub paths_after: PathCount,
    /// Why the run ended. Everything other than
    /// [`StopReason::Converged`] / [`StopReason::MaxPasses`] means the run
    /// was cut short and the circuit holds the last verified state.
    pub stop_reason: StopReason,
    /// **Peak** node count of the cumulative verification BDD manager over
    /// the run (0 when `verify_each_pass` is off). A direct measure of
    /// verification effort against
    /// [`ResynthOptions::verify_node_limit`]; with
    /// [`ResynthOptions::compact_verifier`] off the manager never shrinks
    /// and the peak equals the final count.
    pub verify_nodes: usize,
}

impl fmt::Display for ResynthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} passes, {} replacements: gates {} -> {}, paths {} -> {} ({})",
            self.passes,
            self.replacements,
            self.gates_before,
            self.gates_after,
            self.paths_before,
            self.paths_after,
            self.stop_reason
        )
    }
}

/// Procedure 2: reduce the number of equivalent 2-input gates.
///
/// # Errors
///
/// See [`ResynthError`].
pub fn procedure2(
    circuit: &mut Circuit,
    options: &ResynthOptions,
) -> Result<ResynthReport, ResynthError> {
    let opts = ResynthOptions { objective: Objective::Gates, ..options.clone() };
    resynthesize(circuit, &opts)
}

/// Procedure 3: reduce the number of paths.
///
/// # Errors
///
/// See [`ResynthError`].
pub fn procedure3(
    circuit: &mut Circuit,
    options: &ResynthOptions,
) -> Result<ResynthReport, ResynthError> {
    let opts = ResynthOptions { objective: Objective::Paths, ..options.clone() };
    resynthesize(circuit, &opts)
}

/// Runs the resynthesis procedure with the configured objective until a
/// pass yields no improvement (or `max_passes`).
///
/// Equivalent to [`resynthesize_with_budget`] with an unlimited budget.
///
/// # Errors
///
/// See [`ResynthError`].
pub fn resynthesize(
    circuit: &mut Circuit,
    options: &ResynthOptions,
) -> Result<ResynthReport, ResynthError> {
    resynthesize_with_budget(circuit, options, &Budget::unlimited())
}

/// Runs resynthesis under an effort budget, transactionally per pass.
///
/// Each pass opens an edit transaction on the live circuit; after the pass
/// the result is re-verified against the reference BDDs, and only then
/// committed. If the pass (or its verification) is interrupted — deadline,
/// step budget, cancellation, BDD node-limit blowup, or a verification
/// mismatch — the journal **rolls the circuit back to the last committed
/// state** (cost proportional to the pass's edits, not the circuit) and the
/// function returns `Ok` with the appropriate [`StopReason`], keeping all
/// previously committed work. The returned circuit is always BDD-verified
/// equivalent to the input (when `verify_each_pass` is on).
///
/// # Errors
///
/// Returns [`ResynthError::Netlist`] only for invalid input circuits or
/// internal structural failures; never for interruptions.
pub fn resynthesize_with_budget(
    circuit: &mut Circuit,
    options: &ResynthOptions,
    budget: &Budget,
) -> Result<ResynthReport, ResynthError> {
    commit::run(circuit, options, budget)
}

#[cfg(test)]
mod tests {
    use super::candidates::{enumerate_candidates, removable_gates};
    use super::*;
    use sft_netlist::bench_format::parse;

    /// A chain of 2-input ANDs is a comparison function; Procedure 2 should
    /// keep its cost (no regression) and Procedure 3 must not increase
    /// paths.
    #[test]
    fn and_chain_is_stable() {
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\n\
t1 = AND(a, b)\nt2 = AND(t1, c)\ny = AND(t2, d)\n";
        let mut c = parse(src, "chain").unwrap();
        let before = c.two_input_gate_count();
        let report = procedure2(&mut c, &ResynthOptions::default()).unwrap();
        assert!(report.gates_after <= before);
        assert!(report.paths_after <= report.paths_before);
    }

    /// A redundant double implementation of an XOR-style compare collapses:
    /// y = (a AND !b) OR (!a AND b) is the interval [1,2] and becomes a
    /// 3-eq2-gate comparison unit instead of 3 gates + 2 inverters... the
    /// gate count must not increase and function must hold.
    #[test]
    fn xor_sop_replaced_without_regression() {
        let src = "\
INPUT(a)\nINPUT(b)\nOUTPUT(y)\nna = NOT(a)\nnb = NOT(b)\n\
t1 = AND(a, nb)\nt2 = AND(na, b)\ny = OR(t1, t2)\n";
        let original = parse(src, "xor").unwrap();
        let mut c = original.clone();
        let report = procedure2(&mut c, &ResynthOptions::default()).unwrap();
        assert!(report.gates_after <= report.gates_before);
        assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
    }

    /// An inefficient 2-of-2 detector: y = ab + ab(c + !c)-style padding
    /// reduces to a single AND.
    #[test]
    fn padded_and_collapses() {
        let src = "\
INPUT(a)\nINPUT(b)\nOUTPUT(y)\n\
t1 = AND(a, b)\nt2 = AND(b, a)\ny = OR(t1, t2)\n";
        let original = parse(src, "pad").unwrap();
        let mut c = original.clone();
        let report = procedure2(&mut c, &ResynthOptions::default()).unwrap();
        assert!(
            report.gates_after < report.gates_before,
            "redundant duplicate AND must collapse: {report}"
        );
        assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
    }

    #[test]
    fn procedure3_reduces_paths_on_wide_reconvergence() {
        // f = abc + ab!c has 6 paths as an SOP but is the single cube ab
        // (interval): paths drop to 2.
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nnc = NOT(c)\n\
t1 = AND(a, b)\np1 = AND(t1, c)\np2 = AND(t1, nc)\ny = OR(p1, p2)\n";
        let original = parse(src, "recon").unwrap();
        let mut c = original.clone();
        let report = procedure3(&mut c, &ResynthOptions::default()).unwrap();
        assert!(report.paths_after < report.paths_before, "{report}");
        assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
    }

    #[test]
    fn function_preserved_on_c17() {
        let src = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";
        let original = parse(src, "c17").unwrap();
        for objective in [
            Objective::Gates,
            Objective::Paths,
            Objective::Combined { gate_weight: 1, path_weight: 1 },
        ] {
            let mut c = original.clone();
            let opts = ResynthOptions { objective, ..ResynthOptions::default() };
            let report = resynthesize(&mut c, &opts).unwrap();
            assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
            assert!(report.gates_after <= report.gates_before || objective == Objective::Paths);
        }
    }

    #[test]
    fn candidate_enumeration_respects_k() {
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\nOUTPUT(y)\n\
t1 = AND(a, b)\nt2 = AND(c, d)\nt3 = AND(e, f)\nt4 = AND(t1, t2)\ny = AND(t4, t3)\n";
        let c = parse(src, "wide").unwrap();
        let y = c.outputs()[0];
        let opts = ResynthOptions { max_inputs: 4, ..ResynthOptions::default() };
        let candidates = enumerate_candidates(&c, y, &opts);
        assert!(candidates.iter().all(|(_, inputs)| inputs.len() <= 4));
        // The single-gate candidate is present.
        assert!(candidates.iter().any(|(gates, _)| gates.len() == 1));
        // With K=6 the full cone is reachable.
        let opts6 = ResynthOptions { max_inputs: 6, ..ResynthOptions::default() };
        let candidates6 = enumerate_candidates(&c, y, &opts6);
        assert!(candidates6.iter().any(|(gates, _)| gates.len() == 5));
    }

    #[test]
    fn removable_excludes_shared_gates() {
        // t1 fans out to y and z: replacing y's cone cannot remove t1.
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\n\
t1 = AND(a, b)\ny = OR(t1, c)\nz = NOT(t1)\n";
        let mut c = parse(src, "shared").unwrap();
        let y = c.outputs()[0];
        let t1 = c.iter().find(|(_, n)| n.name() == Some("t1")).map(|(id, _)| id).unwrap();
        c.enable_views();
        let removable = removable_gates(y, &[y, t1], c.views().unwrap());
        assert!(!removable.contains(&t1), "shared gate must not be counted removable");
        assert!(removable.contains(&y));
    }

    /// Resynthesis leaves no residue on the circuit: views are detached and
    /// no transaction is open, on every exit path.
    #[test]
    fn run_leaves_circuit_without_views_or_transactions() {
        let mut c = budget_fixture();
        procedure2(&mut c, &ResynthOptions::default()).unwrap();
        assert!(c.views().is_none());
        assert!(!c.in_transaction());

        // Early-exit path: reference BDDs do not fit.
        let mut c = budget_fixture();
        let opts = ResynthOptions { verify_node_limit: 2, ..ResynthOptions::default() };
        resynthesize(&mut c, &opts).unwrap();
        assert!(c.views().is_none());
        assert!(!c.in_transaction());
    }

    #[test]
    fn dont_care_option_still_exact() {
        // With unreachable cone inputs, dc-identification may restructure
        // more aggressively; whole-circuit function must still hold.
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n\
na = NOT(a)\nt1 = AND(a, na)\nt2 = OR(t1, b)\ny = AND(t2, c)\n";
        let original = parse(src, "dc").unwrap();
        let mut c = original.clone();
        let opts =
            ResynthOptions { use_satisfiability_dont_cares: true, ..ResynthOptions::default() };
        resynthesize(&mut c, &opts).unwrap();
        assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
    }

    /// Concluding remark 2: with multi-unit covers enabled, a cone that is
    /// not a comparison function (majority) can still be replaced by an OR
    /// of units when that helps; the function must be preserved and gates
    /// must not regress relative to the single-unit run.
    #[test]
    fn multi_unit_cover_extension() {
        // A deliberately wasteful majority implementation: the flat SOP of
        // maj(a,b,c) duplicated through buffers.
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n\
t1 = AND(a, b)\nt2 = AND(a, c)\nt3 = AND(b, c)\no1 = OR(t1, t2)\ny = OR(o1, t3)\n";
        let original = parse(src, "maj").unwrap();
        let single = {
            let mut c = original.clone();
            procedure2(&mut c, &ResynthOptions::default()).unwrap();
            c
        };
        let multi = {
            let mut c = original.clone();
            let opts = ResynthOptions { max_cover_units: 3, ..ResynthOptions::default() };
            procedure2(&mut c, &opts).unwrap();
            c
        };
        assert!(sft_bdd::equivalent(&original, &multi).unwrap().is_equivalent());
        assert!(multi.two_input_gate_count() <= original.two_input_gate_count());
        // The extension can only widen the search space.
        assert!(multi.two_input_gate_count() <= single.two_input_gate_count());
    }

    /// The polarity extension finds replacements the plain procedure
    /// cannot: on-set {0, 3} over (b, c) inside a cone is a comparison
    /// function only after complementing one input.
    #[test]
    fn input_negation_extension_preserves_function() {
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n\
nb = NOT(b)\nnc = NOT(c)\nt1 = AND(nb, nc)\nt2 = AND(b, c)\no = OR(t1, t2)\ny = AND(a, o)\n";
        let original = parse(src, "xnor_cone").unwrap();
        let mut c = original.clone();
        let opts = ResynthOptions { allow_input_negation: true, ..ResynthOptions::default() };
        procedure2(&mut c, &opts).unwrap();
        assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
        assert!(c.two_input_gate_count() <= original.two_input_gate_count());
    }

    #[test]
    fn report_display() {
        let r = ResynthReport {
            passes: 2,
            replacements: 3,
            gates_before: 10,
            gates_after: 8,
            paths_before: PathCount::exact(100),
            paths_after: PathCount::exact(60),
            stop_reason: StopReason::Converged,
            verify_nodes: 0,
        };
        assert_eq!(
            r.to_string(),
            "2 passes, 3 replacements: gates 10 -> 8, paths 100 -> 60 (converged)"
        );
    }

    /// The wasteful XOR SOP used by the budget acceptance tests: several
    /// passes of work are available, so interruptions can land mid-run.
    fn budget_fixture() -> Circuit {
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nna = NOT(a)\nnb = NOT(b)\n\
t1 = AND(a, nb)\nt2 = AND(na, b)\nx = OR(t1, t2)\n\
p1 = AND(x, c)\np2 = AND(c, x)\ny = OR(p1, p2)\n";
        parse(src, "budget_fixture").unwrap()
    }

    /// A pre-expired deadline stops before the first pass: `Ok` report with
    /// `Deadline`, zero passes, and the circuit untouched.
    #[test]
    fn pre_expired_deadline_returns_input_unchanged() {
        let original = budget_fixture();
        let mut c = original.clone();
        let budget = Budget::unlimited().with_time_limit(std::time::Duration::ZERO);
        let report = resynthesize_with_budget(&mut c, &ResynthOptions::default(), &budget).unwrap();
        assert_eq!(report.stop_reason, StopReason::Deadline);
        assert_eq!(report.passes, 0);
        assert_eq!(report.replacements, 0);
        assert_eq!(report.gates_after, report.gates_before);
        assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
    }

    /// A tiny step budget interrupts candidate scoring mid-pass; the pass
    /// rolls back, the report is `Ok` with `StepBudget`, and the circuit is
    /// still equivalent to the input.
    #[test]
    fn step_budget_interrupts_mid_pass_and_rolls_back() {
        let original = budget_fixture();
        let mut c = original.clone();
        let budget = Budget::unlimited().with_step_limit(3);
        let report = resynthesize_with_budget(&mut c, &ResynthOptions::default(), &budget).unwrap();
        assert_eq!(report.stop_reason, StopReason::StepBudget, "{report}");
        assert_eq!(report.passes, 0, "an interrupted pass must not be counted");
        assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
    }

    /// A raised cancellation flag stops the run with `Cancelled` and the
    /// last committed circuit.
    #[test]
    fn cancellation_stops_the_run() {
        let original = budget_fixture();
        let mut c = original.clone();
        let flag = sft_budget::CancelFlag::new();
        flag.cancel();
        let budget = Budget::unlimited().with_cancel(flag);
        let report = resynthesize_with_budget(&mut c, &ResynthOptions::default(), &budget).unwrap();
        assert_eq!(report.stop_reason, StopReason::Cancelled);
        assert_eq!(report.passes, 0);
        assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
    }

    /// A generous budget changes nothing: same result as the unbudgeted
    /// run, stop reason still a natural completion.
    #[test]
    fn generous_budget_matches_unbudgeted_run() {
        let mut unbudgeted = budget_fixture();
        let r1 = resynthesize(&mut unbudgeted, &ResynthOptions::default()).unwrap();
        let mut budgeted = budget_fixture();
        let budget = Budget::unlimited()
            .with_time_limit(std::time::Duration::from_secs(3600))
            .with_step_limit(1_000_000);
        let r2 =
            resynthesize_with_budget(&mut budgeted, &ResynthOptions::default(), &budget).unwrap();
        assert_eq!(r1, r2);
        assert!(!r2.stop_reason.is_early());
        assert!(sft_bdd::equivalent(&unbudgeted, &budgeted).unwrap().is_equivalent());
    }

    /// When even the reference BDDs do not fit the verification manager,
    /// the run returns the untouched circuit with `BddBlowup` instead of an
    /// error — the anytime contract holds all the way down.
    #[test]
    fn reference_blowup_returns_input_unchanged() {
        let original = budget_fixture();
        let mut c = original.clone();
        let opts = ResynthOptions { verify_node_limit: 2, ..ResynthOptions::default() };
        let report = resynthesize(&mut c, &opts).unwrap();
        assert_eq!(report.stop_reason, StopReason::BddBlowup);
        assert_eq!(report.passes, 0);
        assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
    }

    /// The headline acceptance test: verification blows up only after the
    /// first committed pass, and the run keeps that pass's work —
    /// `replacements > 0`, `stop_reason: BddBlowup`, circuit equivalent to
    /// the input and strictly better than it.
    #[test]
    fn pass2_blowup_keeps_pass1_work() {
        // A seeded reconvergent circuit known to improve over several
        // passes (later passes absorb the unit gates the earlier ones
        // created), so the cumulative verification manager keeps growing
        // after pass 1.
        let original =
            sft_circuits::random::random_circuit(&sft_circuits::random::RandomCircuitConfig {
                inputs: 12,
                outputs: 6,
                gates: 80,
                window: 24,
                seed: 1,
            });
        // With compaction off the verification manager only grows, so
        // `verify_nodes` of a prefix run is a floor for the full run's and
        // the one-node-short limit below lands in a later pass.
        let base = ResynthOptions { compact_verifier: false, ..ResynthOptions::default() };
        let full = {
            let mut c = original.clone();
            resynthesize(&mut c, &base).unwrap()
        };
        let pass1 = {
            let mut c = original.clone();
            let opts = ResynthOptions { max_passes: 1, ..base.clone() };
            resynthesize(&mut c, &opts).unwrap()
        };
        assert!(full.passes >= 2, "fixture must take at least two passes: {full}");
        assert!(
            full.replacements > pass1.replacements,
            "later passes must do real work: {pass1} vs {full}"
        );
        // One node short of the full run's verification demand: the run
        // replays identically until the last allocating pass, whose
        // verification now blows up and rolls back.
        let limit = full.verify_nodes - 1;
        assert!(
            limit >= pass1.verify_nodes,
            "pass-1 verification must fit under the injected limit"
        );
        let mut c = original.clone();
        let opts = ResynthOptions { verify_node_limit: limit, ..base };
        let report = resynthesize(&mut c, &opts).unwrap();
        assert_eq!(report.stop_reason, StopReason::BddBlowup, "{report}");
        assert!(report.passes >= 1, "pass-1 commit must survive the blowup: {report}");
        assert!(report.replacements > 0, "pass-1 work must be kept: {report}");
        assert!(
            sft_bdd::equivalent(&original, &c).unwrap().is_equivalent(),
            "rollback must preserve the function"
        );
        assert!(
            c.two_input_gate_count() < original.two_input_gate_count(),
            "kept work must improve on the input"
        );
    }

    /// The tentpole invariant: P-class memoization and rejection replay are
    /// pure accelerations. On the bundled suite and on a multi-pass fixture
    /// that exercises the skip path, the final netlist and the report are
    /// bit-identical to a cold, fully re-scored run.
    #[test]
    fn memo_and_incremental_rescoring_match_full_rewalk() {
        let fast = ResynthOptions { max_candidates_per_gate: 60, ..ResynthOptions::default() };
        let slow = ResynthOptions {
            memoize_identification: false,
            incremental_rescoring: false,
            ..fast.clone()
        };
        let multi_pass =
            sft_circuits::random::random_circuit(&sft_circuits::random::RandomCircuitConfig {
                inputs: 12,
                outputs: 6,
                gates: 80,
                window: 24,
                seed: 1,
            });
        let mut circuits: Vec<Circuit> =
            sft_circuits::suite::suite_small().into_iter().map(|e| e.circuit).collect();
        circuits.push(multi_pass);
        for original in circuits {
            let mut a = original.clone();
            let mut b = original.clone();
            let ra = resynthesize(&mut a, &fast).unwrap();
            let rb = resynthesize(&mut b, &slow).unwrap();
            assert_eq!(ra, rb, "{}: reports must match", original.name());
            assert_eq!(a, b, "{}: netlists must be bit-identical", original.name());
        }
    }

    /// Compacting the verification manager between passes changes neither
    /// the result nor the decisions, and its peak node count never exceeds
    /// the monotone (uncompacted) manager's.
    #[test]
    fn verifier_compaction_is_transparent_and_bounded() {
        let original =
            sft_circuits::random::random_circuit(&sft_circuits::random::RandomCircuitConfig {
                inputs: 12,
                outputs: 6,
                gates: 80,
                window: 24,
                seed: 1,
            });
        let compacted_opts = ResynthOptions { compact_verifier: true, ..ResynthOptions::default() };
        let monotone_opts = ResynthOptions { compact_verifier: false, ..ResynthOptions::default() };
        let mut compacted = original.clone();
        let rc = resynthesize(&mut compacted, &compacted_opts).unwrap();
        let mut monotone = original.clone();
        let rm = resynthesize(&mut monotone, &monotone_opts).unwrap();
        assert!(rc.passes >= 2, "fixture must take at least two passes: {rc}");
        assert_eq!(compacted, monotone, "compaction must not change the netlist");
        assert_eq!((rc.passes, rc.replacements), (rm.passes, rm.replacements));
        assert_eq!((rc.gates_after, rc.paths_after), (rm.gates_after, rm.paths_after));
        assert!(
            rc.verify_nodes <= rm.verify_nodes,
            "compacted peak {} must not exceed monotone peak {}",
            rc.verify_nodes,
            rm.verify_nodes
        );
    }
}
