//! Procedures 2 and 3 of the paper: circuit optimization by replacing
//! subcircuits with comparison units.
//!
//! Both procedures traverse the circuit from the primary outputs towards
//! the primary inputs in reverse BFS (level) order. At every *marked* gate
//! output `g` they enumerate candidate subcircuits (cones rooted at `g`
//! with at most `K` inputs), keep those whose function at `g` is a
//! comparison function, and score replacing them with the corresponding
//! comparison unit:
//!
//! - **Procedure 2** maximizes the reduction in equivalent 2-input gates,
//!   breaking ties by the number of paths at `g`. Gates of the old cone
//!   that fan out elsewhere are excluded from the removable count, exactly
//!   as in the paper (Section 4.1).
//! - **Procedure 3** minimizes the number of paths at `g` (using the
//!   Section 2 identity `N_p(g) = Σ N_p(I_i)·K_p(I_i)`), with no secondary
//!   gate objective (Section 4.2).
//! - **Combined** (Section 4.3) maximizes a weighted sum of both
//!   improvements.
//!
//! After a replacement, the inputs of the selected subcircuit are marked
//! for further processing, and the internal gates that the replacement made
//! dead are never revisited. The whole procedure repeats in passes until a
//! pass yields no improvement. Every pass is (optionally but by default)
//! verified equivalent to the input circuit with BDDs.
//!
//! Resynthesis is **transactional per pass**: each pass mutates a working
//! copy that is committed only after BDD verification succeeds. BDD blowup,
//! a verification mismatch, budget exhaustion, or cancellation rolls the
//! circuit back to the last verified state and ends the run with a
//! [`StopReason`] in the report — never an error that discards completed
//! passes. The procedures are anytime algorithms, and the API preserves
//! that property.

use crate::cover::{comparison_cover, cover_cost};
use crate::unit::{build_unit_in, unit_cost};
use crate::{
    identify, identify_with_dc, identify_with_polarities, ComparisonSpec, IdentifyOptions,
};
use sft_budget::{Budget, Exhausted, StopReason};
use sft_netlist::{simplify, two_input_cost, Circuit, GateKind, NodeId, PathCount};
use sft_par::{parallel_map, Jobs};
use std::collections::HashSet;
use std::fmt;

/// What a candidate replacement is scored by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Procedure 2: maximize the gate reduction, tie-break on paths.
    #[default]
    Gates,
    /// Procedure 3: minimize the paths at the replaced line.
    Paths,
    /// Section 4.3: maximize `gate_weight·Δgates + path_weight·Δpaths`.
    Combined {
        /// Weight of the equivalent-2-input-gate reduction.
        gate_weight: u32,
        /// Weight of the path-count reduction at the line.
        path_weight: u32,
    },
}

/// Options controlling the resynthesis procedures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResynthOptions {
    /// The input limit `K` of candidate subcircuits (the paper uses 5–7).
    pub max_inputs: usize,
    /// Cap on candidate subcircuits enumerated per gate output.
    pub max_candidates_per_gate: usize,
    /// The optimization objective.
    pub objective: Objective,
    /// Comparison-function identification options.
    pub identify: IdentifyOptions,
    /// Maximum number of passes.
    pub max_passes: usize,
    /// Verify circuit equivalence with BDDs after every pass.
    pub verify_each_pass: bool,
    /// Node cap of the verification BDD manager. Verification BDDs for the
    /// reference and every pass result accumulate in one hash-consed
    /// manager; exceeding the cap rolls the run back to the last verified
    /// circuit with [`StopReason::BddBlowup`].
    pub verify_node_limit: usize,
    /// Use satisfiability don't-cares (reachable cone-input combinations)
    /// during identification — the first "issue to be investigated" of the
    /// paper's concluding remarks. Computed exactly with BDDs; expensive,
    /// off by default.
    pub use_satisfiability_dont_cares: bool,
    /// Allow replacing a subcircuit by an OR of up to this many comparison
    /// units when its function is not a comparison function — the paper's
    /// concluding remark 2. `1` (the default) reproduces the paper's
    /// single-unit procedure.
    pub max_cover_units: usize,
    /// Also search input polarities during identification: a cone whose
    /// function becomes a comparison function after complementing some of
    /// its inputs is replaced by a unit fed through inverters (which cost
    /// no equivalent 2-input gates and add no paths). A strict
    /// generalization of Definition 1; off by default to match the paper.
    pub allow_input_negation: bool,
    /// Worker threads scoring candidate cones concurrently. Scoring is
    /// read-only, results are merged in enumeration order, and all circuit
    /// edits stay on the calling thread, so the resynthesized circuit is
    /// identical at any value when the budget is unlimited; under a step
    /// budget, workers may overshoot the step limit by up to `jobs - 1`
    /// in-flight scoring steps. Ignored (treated as serial) while
    /// `use_satisfiability_dont_cares` is on, since SDC extraction shares
    /// one mutable BDD manager.
    pub jobs: Jobs,
    /// Memoize exact comparison-function identification in the
    /// process-wide tables of [`crate::memo`]: negative verdicts shared
    /// per P-class, positive certificates replayed per exact truth table.
    /// Identification answers — certificates included — and the resulting
    /// netlist are bit-identical to an unmemoized run; repeated cone
    /// functions (within a circuit, across passes, and across circuits)
    /// skip the exponential decision procedure. Only
    /// [`IdentifyMethod::Exact`](crate::IdentifyMethod::Exact) queries are
    /// cached — see the module docs.
    /// On by default.
    pub memoize_identification: bool,
    /// Skip re-scoring gates whose rejection provably replays: a gate
    /// rejected in a pass is not re-scored in the next pass unless the
    /// modified region (the replacements, their fanin frontier, and
    /// everything downstream) reaches its scoring environment. The final
    /// netlist is identical to a full re-walk; under a *step* budget the
    /// run consumes fewer steps and can therefore progress further before
    /// exhaustion. On by default.
    pub incremental_rescoring: bool,
    /// Compact the cumulative verification BDD manager after every
    /// committed pass, keeping only the reference and the committed
    /// circuit's node BDDs. Bounds the manager (and its operation caches)
    /// by the live working set instead of the whole run's history;
    /// [`ResynthReport::verify_nodes`] reports the peak either way. Off, the
    /// manager grows monotonically (the pre-compaction behavior). On by
    /// default.
    pub compact_verifier: bool,
}

impl Default for ResynthOptions {
    fn default() -> Self {
        ResynthOptions {
            max_inputs: 5,
            max_candidates_per_gate: 200,
            objective: Objective::Gates,
            identify: IdentifyOptions::default(),
            max_passes: 16,
            verify_each_pass: true,
            verify_node_limit: sft_bdd::DEFAULT_NODE_LIMIT,
            use_satisfiability_dont_cares: false,
            max_cover_units: 1,
            allow_input_negation: false,
            jobs: Jobs::serial(),
            memoize_identification: true,
            incremental_rescoring: true,
            compact_verifier: true,
        }
    }
}

/// Errors from resynthesis.
///
/// Only genuinely unrecoverable conditions are errors: a circuit that fails
/// validation (or a structural edit that cannot be applied). Recoverable
/// interruptions — BDD blowup, verification mismatch, budget exhaustion,
/// cancellation — roll back to the last verified circuit and are reported
/// through [`ResynthReport::stop_reason`] instead.
#[derive(Debug)]
pub enum ResynthError {
    /// The circuit failed validation before or during resynthesis.
    Netlist(sft_netlist::NetlistError),
}

impl fmt::Display for ResynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResynthError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for ResynthError {}

impl From<sft_netlist::NetlistError> for ResynthError {
    fn from(e: sft_netlist::NetlistError) -> Self {
        ResynthError::Netlist(e)
    }
}

/// Summary of a resynthesis run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResynthReport {
    /// Committed (verified) passes.
    pub passes: usize,
    /// Subcircuit replacements in committed passes.
    pub replacements: usize,
    /// Equivalent 2-input gates before.
    pub gates_before: u64,
    /// Equivalent 2-input gates after.
    pub gates_after: u64,
    /// Paths before (saturation-aware).
    pub paths_before: PathCount,
    /// Paths after (saturation-aware).
    pub paths_after: PathCount,
    /// Why the run ended. Everything other than
    /// [`StopReason::Converged`] / [`StopReason::MaxPasses`] means the run
    /// was cut short and the circuit holds the last verified state.
    pub stop_reason: StopReason,
    /// **Peak** node count of the cumulative verification BDD manager over
    /// the run (0 when `verify_each_pass` is off). A direct measure of
    /// verification effort against
    /// [`ResynthOptions::verify_node_limit`]; with
    /// [`ResynthOptions::compact_verifier`] off the manager never shrinks
    /// and the peak equals the final count.
    pub verify_nodes: usize,
}

impl fmt::Display for ResynthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} passes, {} replacements: gates {} -> {}, paths {} -> {} ({})",
            self.passes,
            self.replacements,
            self.gates_before,
            self.gates_after,
            self.paths_before,
            self.paths_after,
            self.stop_reason
        )
    }
}

/// Procedure 2: reduce the number of equivalent 2-input gates.
///
/// # Errors
///
/// See [`ResynthError`].
pub fn procedure2(
    circuit: &mut Circuit,
    options: &ResynthOptions,
) -> Result<ResynthReport, ResynthError> {
    let opts = ResynthOptions { objective: Objective::Gates, ..options.clone() };
    resynthesize(circuit, &opts)
}

/// Procedure 3: reduce the number of paths.
///
/// # Errors
///
/// See [`ResynthError`].
pub fn procedure3(
    circuit: &mut Circuit,
    options: &ResynthOptions,
) -> Result<ResynthReport, ResynthError> {
    let opts = ResynthOptions { objective: Objective::Paths, ..options.clone() };
    resynthesize(circuit, &opts)
}

/// What a candidate replaces the subcircuit with.
enum Replacement {
    /// A single comparison unit (the paper's procedure).
    Unit(ComparisonSpec),
    /// A unit fed through inverters on the negated inputs (polarity
    /// extension).
    NegatedUnit(ComparisonSpec, Vec<bool>),
    /// An OR of several comparison units (concluding remark 2).
    Cover(Vec<ComparisonSpec>),
}

/// A scored candidate subcircuit.
struct Candidate {
    gates: Vec<NodeId>,
    inputs: Vec<NodeId>,
    replacement: Replacement,
    gate_reduction: i64,
    new_paths_at_g: u128,
}

/// Why a pass could not run to completion. Budget exhaustion is recoverable
/// (rollback + report); netlist errors are not.
enum PassAbort {
    Budget(Exhausted),
    Netlist(sft_netlist::NetlistError),
}

impl From<sft_netlist::NetlistError> for PassAbort {
    fn from(e: sft_netlist::NetlistError) -> Self {
        PassAbort::Netlist(e)
    }
}

impl From<Exhausted> for PassAbort {
    fn from(e: Exhausted) -> Self {
        PassAbort::Budget(e)
    }
}

/// The cumulative verification state: one shared manager holding the
/// reference output BDDs **and** the per-node BDDs of the last committed
/// circuit. Verification is incremental: a pass result reuses the committed
/// references for every node outside the modified region and rebuilds only
/// the dirty ones, so hash-consing makes equivalence a reference comparison
/// and per-pass BDD work is proportional to the pass's edits, not the
/// circuit.
struct Verifier {
    manager: sft_bdd::Manager,
    /// Output BDDs of the input circuit — the spec every pass must match.
    reference: Vec<sft_bdd::BddRef>,
    /// Per-node BDDs of the last committed circuit, indexed by node id.
    node_refs: Vec<sft_bdd::BddRef>,
    /// BDD variable of each input position, fixed at reference build time
    /// (a DFS-derived order; see [`sft_bdd::dfs_input_order`]). Inputs are
    /// never added, dropped, or reordered by a pass, so the same map stays
    /// valid for every incremental rebuild.
    var_order: Vec<u32>,
    /// Largest node count the manager ever held.
    peak: usize,
}

impl Verifier {
    /// Checks a swept pass result against the reference. `dirty_pre` marks
    /// (in the pre-sweep id space shared with the committed circuit) the
    /// nodes whose function may differ from the committed one; every other
    /// node's committed BDD is carried through `map`. Returns whether the
    /// outputs still match; on a match the carried+rebuilt refs become the
    /// new committed refs.
    fn check_pass(
        &mut self,
        circuit: &Circuit,
        dirty_pre: &[bool],
        map: &sft_netlist::NodeMap,
        budget: &Budget,
    ) -> Result<bool, sft_bdd::BddError> {
        let mut refs = vec![sft_bdd::BddRef::FALSE; circuit.len()];
        let mut have = vec![false; circuit.len()];
        for (old, &r) in self.node_refs.iter().enumerate() {
            if dirty_pre[old] {
                continue;
            }
            if let Some(new) = map.get(NodeId::from_index(old)) {
                refs[new.index()] = r;
                have[new.index()] = true;
            }
        }
        let input_var: std::collections::HashMap<NodeId, u32> =
            circuit.inputs().iter().enumerate().map(|(i, &id)| (id, self.var_order[i])).collect();
        // Infallible: every structural edit is cycle-checked by `rewire`.
        let order = circuit.topo_order().expect("combinational circuit");
        for id in order {
            if have[id.index()] {
                continue;
            }
            budget.check()?;
            let node = circuit.node(id);
            let r = match node.kind() {
                GateKind::Input => self.manager.var(input_var[&id])?,
                kind => {
                    let fanins: Vec<sft_bdd::BddRef> =
                        node.fanins().iter().map(|f| refs[f.index()]).collect();
                    sft_bdd::gate_bdd(&mut self.manager, kind, &fanins)?
                }
            };
            refs[id.index()] = r;
            have[id.index()] = true;
        }
        let outs: Vec<sft_bdd::BddRef> =
            circuit.outputs().iter().map(|o| refs[o.index()]).collect();
        let ok = outs == self.reference;
        if ok {
            self.node_refs = refs;
        }
        Ok(ok)
    }

    /// Garbage-collects the manager down to the reference and the committed
    /// circuit's node BDDs, remapping both reference sets consistently.
    fn compact(&mut self) {
        let split = self.node_refs.len();
        let mut keep = std::mem::take(&mut self.node_refs);
        keep.extend_from_slice(&self.reference);
        self.manager.compact(&mut keep);
        self.reference = keep.split_off(split);
        self.node_refs = keep;
    }
}

/// The modified region of `current` (post-simplify, **pre-sweep** — its ids
/// are shared with `committed`), as two masks over `current`'s ids:
///
/// - `.0` — verification-dirty: nodes whose function of the primary inputs
///   may differ from the committed circuit's. Seeds are the changed nodes
///   (different kind or fanin list, or appended this pass); the set is
///   closed downstream, so everything outside keeps its committed BDD.
/// - `.1` — scoring-dirty: nodes whose next-pass scoring environment may
///   differ. Seeds additionally include every fanin of a changed node in
///   either structure (its consumer multiset changed) and every fanin of a
///   node the sweep is about to drop (it loses that consumer), again closed
///   downstream. A rejected gate outside this set sees byte-identical path
///   labels, cone functions, and fanout tables next pass, so its rejection
///   replays without re-scoring.
fn dirty_regions(committed: &Circuit, current: &Circuit) -> (Vec<bool>, Vec<bool>) {
    let n = current.len();
    let live = current.live_mask();
    let mut bdd = vec![false; n];
    let mut score = vec![false; n];
    for i in 0..n {
        let id = NodeId::from_index(i);
        let node = current.node(id);
        let changed = i >= committed.len() || {
            let old = committed.node(id);
            old.kind() != node.kind() || old.fanins() != node.fanins()
        };
        if changed {
            bdd[i] = true;
            score[i] = true;
            for f in node.fanins() {
                score[f.index()] = true;
            }
            if i < committed.len() {
                for f in committed.node(id).fanins() {
                    score[f.index()] = true;
                }
            }
        }
        if !live[i] {
            score[i] = true;
            for f in node.fanins() {
                score[f.index()] = true;
            }
        }
    }
    // Close both masks downstream: a node fed by a dirty node is dirty.
    let order = current.topo_order().expect("combinational circuit");
    for &id in &order {
        if bdd[id.index()] && score[id.index()] {
            continue;
        }
        for f in current.node(id).fanins() {
            if bdd[f.index()] {
                bdd[id.index()] = true;
            }
            if score[f.index()] {
                score[id.index()] = true;
            }
        }
    }
    (bdd, score)
}

/// Runs the resynthesis procedure with the configured objective until a
/// pass yields no improvement (or `max_passes`).
///
/// Equivalent to [`resynthesize_with_budget`] with an unlimited budget.
///
/// # Errors
///
/// See [`ResynthError`].
pub fn resynthesize(
    circuit: &mut Circuit,
    options: &ResynthOptions,
) -> Result<ResynthReport, ResynthError> {
    resynthesize_with_budget(circuit, options, &Budget::unlimited())
}

/// Runs resynthesis under an effort budget, transactionally per pass.
///
/// Each pass works on the live circuit; after the pass the result is
/// re-verified against the reference BDDs, and only then committed. If the
/// pass (or its verification) is interrupted — deadline, step budget,
/// cancellation, BDD node-limit blowup, or a verification mismatch — the
/// circuit **rolls back to the last committed state** and the function
/// returns `Ok` with the appropriate [`StopReason`], keeping all previously
/// committed work. The returned circuit is always BDD-verified equivalent
/// to the input (when `verify_each_pass` is on).
///
/// # Errors
///
/// Returns [`ResynthError::Netlist`] only for invalid input circuits or
/// internal structural failures; never for interruptions.
pub fn resynthesize_with_budget(
    circuit: &mut Circuit,
    options: &ResynthOptions,
    budget: &Budget,
) -> Result<ResynthReport, ResynthError> {
    circuit.validate()?;
    let mut report = ResynthReport {
        gates_before: circuit.two_input_gate_count(),
        paths_before: circuit.path_count_exact(),
        ..ResynthReport::default()
    };
    let finish = |circuit: &Circuit, mut report: ResynthReport, reason: StopReason| {
        report.stop_reason = reason;
        report.gates_after = circuit.two_input_gate_count();
        report.paths_after = circuit.path_count_exact();
        Ok(report)
    };
    // Build the reference BDDs once. If even the input circuit does not fit
    // the verification manager, no verified replacement is possible: return
    // the untouched circuit with the reason.
    let mut verifier = if options.verify_each_pass {
        let mut manager = sft_bdd::Manager::with_node_limit(options.verify_node_limit);
        let var_order = sft_bdd::dfs_input_order(circuit);
        match sft_bdd::circuit_node_bdds_ordered(&mut manager, circuit, &var_order, budget) {
            Ok(node_refs) => {
                let reference: Vec<sft_bdd::BddRef> =
                    circuit.outputs().iter().map(|o| node_refs[o.index()]).collect();
                let peak = manager.node_count();
                Some(Verifier { manager, reference, node_refs, var_order, peak })
            }
            Err(e) => {
                report.verify_nodes = manager.node_count();
                let reason = match e {
                    sft_bdd::BddError::NodeLimit(_) => StopReason::BddBlowup,
                    sft_bdd::BddError::Interrupted(x) => x.into(),
                };
                return finish(circuit, report, reason);
            }
        }
    } else {
        None
    };
    // The last verified (or at least committed) state; every abort path
    // restores the circuit to it.
    let mut committed = circuit.clone();
    // Gates (ids of the committed circuit) whose rejection last pass is
    // outside this pass's modified region: the next pass replays the
    // rejection without re-scoring.
    let mut skip: Vec<bool> = Vec::new();
    let reason = loop {
        if report.passes >= options.max_passes {
            break StopReason::MaxPasses;
        }
        if let Err(e) = budget.check() {
            break e.into();
        }
        let before_gates = circuit.two_input_gate_count();
        let before_paths = circuit.path_count();
        let mut rejected = vec![false; circuit.len()];
        let replacements = match one_pass(circuit, options, budget, &skip, &mut rejected) {
            Ok(n) => n,
            Err(PassAbort::Budget(e)) => {
                circuit.clone_from(&committed);
                break e.into();
            }
            Err(PassAbort::Netlist(e)) => {
                // Structural corruption is a bug, not an effort problem;
                // still hand back the last good circuit.
                circuit.clone_from(&committed);
                return Err(e.into());
            }
        };
        simplify::propagate_constants(circuit);
        simplify::collapse_buffers(circuit);
        let (bdd_dirty, score_dirty) = dirty_regions(&committed, circuit);
        let map = circuit.sweep();
        if let Some(v) = &mut verifier {
            let outcome = v.check_pass(circuit, &bdd_dirty, &map, budget);
            v.peak = v.peak.max(v.manager.node_count());
            match outcome {
                Ok(true) => {}
                Ok(false) => {
                    circuit.clone_from(&committed);
                    break StopReason::VerificationRollback;
                }
                Err(sft_bdd::BddError::NodeLimit(_)) => {
                    circuit.clone_from(&committed);
                    break StopReason::BddBlowup;
                }
                Err(sft_bdd::BddError::Interrupted(e)) => {
                    circuit.clone_from(&committed);
                    break e.into();
                }
            }
        }
        // Commit the verified pass.
        committed.clone_from(circuit);
        skip = vec![false; circuit.len()];
        if options.incremental_rescoring {
            for (old, &was_rejected) in rejected.iter().enumerate() {
                if was_rejected && !score_dirty[old] {
                    if let Some(new) = map.get(NodeId::from_index(old)) {
                        skip[new.index()] = true;
                    }
                }
            }
        }
        report.passes += 1;
        report.replacements += replacements;
        let improved = match options.objective {
            Objective::Gates => circuit.two_input_gate_count() < before_gates,
            Objective::Paths => circuit.path_count() < before_paths,
            Objective::Combined { .. } => {
                circuit.two_input_gate_count() < before_gates || circuit.path_count() < before_paths
            }
        };
        if replacements == 0 || !improved {
            break StopReason::Converged;
        }
        // Another pass follows: bound the manager by the live working set.
        // Compacting on the way *into* a pass (rather than after every
        // verification) skips the pointless rebuild on the final,
        // converging pass.
        if options.compact_verifier {
            if let Some(v) = &mut verifier {
                v.compact();
            }
        }
    };
    if let Some(v) = &verifier {
        report.verify_nodes = v.peak.max(v.manager.node_count());
    }
    finish(circuit, report, reason)
}

/// One output-to-input pass. Returns the number of replacements, or the
/// reason the pass had to be abandoned (the caller rolls back).
///
/// `skip[g]` replays a previous rejection at `g` without re-scoring; the
/// caller guarantees (via [`dirty_regions`]) that `g`'s scoring environment
/// is unchanged since that rejection, and the flags are honored only while
/// this pass has not yet edited the circuit — after the first replacement
/// the environment is mid-pass state the caller could not have diffed.
/// `rejected` records (under the same freshness rule) the gates this pass
/// scored-and-rejected or replay-skipped, as input for the next pass's skip
/// set.
fn one_pass(
    circuit: &mut Circuit,
    options: &ResynthOptions,
    budget: &Budget,
    skip: &[bool],
    rejected: &mut [bool],
) -> Result<usize, PassAbort> {
    let labels = circuit.path_labels();
    let order = circuit.bfs_order()?;
    let mut marked = vec![false; circuit.len()];
    for &o in circuit.outputs() {
        marked[o.index()] = true;
    }
    let mut consumed = vec![false; circuit.len()];
    let output_mask = {
        let mut m = vec![false; circuit.len()];
        for &o in circuit.outputs() {
            m[o.index()] = true;
        }
        m
    };
    // Satisfiability-don't-care support: BDDs of every original line. SDCs
    // only widen the search, so hitting the node limit here degrades to
    // plain identification instead of aborting the pass.
    let mut dc_state = if options.use_satisfiability_dont_cares {
        let mut manager = sft_bdd::Manager::new();
        match sft_bdd::circuit_node_bdds_budgeted(&mut manager, circuit, budget) {
            Ok(per_node) => Some((manager, per_node)),
            Err(sft_bdd::BddError::NodeLimit(_)) => None,
            Err(sft_bdd::BddError::Interrupted(e)) => return Err(e.into()),
        }
    } else {
        None
    };

    // Fanout bookkeeping only changes when the circuit does, so it is
    // hoisted out of the gate loop and refreshed after each replacement.
    let mut fanout_counts = circuit.fanout_counts();
    let mut fanout_table = circuit.fanout_table();
    // Skip flags (and newly recorded rejections) are valid only against the
    // pass-start state the caller diffed; the first edit invalidates both.
    let mut untouched = true;
    let mut replacements = 0usize;
    for &g in order.iter().rev() {
        if g.index() >= marked.len() {
            continue; // nodes appended during this pass
        }
        if !marked[g.index()] || consumed[g.index()] {
            continue;
        }
        if !circuit.node(g).kind().is_gate() {
            continue;
        }
        budget.check()?;
        if untouched && skip.get(g.index()).copied().unwrap_or(false) {
            // Replayed rejection: same traversal as the reject branch below,
            // with the scoring skipped.
            rejected[g.index()] = true;
            for f in circuit.node(g).fanins().to_vec() {
                if f.index() < marked.len() && circuit.node(f).kind().is_gate() {
                    marked[f.index()] = true;
                }
            }
            continue;
        }
        let candidates = enumerate_candidates(circuit, g, options);
        let ctx = ScoreCtx {
            g,
            labels: &labels,
            output_mask: &output_mask,
            fanout_counts: &fanout_counts,
            fanout_table: &fanout_table,
        };
        // Scoring is read-only on the circuit, so candidates fan out to
        // worker threads; the SDC path shares one mutable BDD manager and
        // stays sequential. Merging in enumeration order keeps the chosen
        // candidate identical at any thread count.
        let scored: Vec<Result<Option<Candidate>, Exhausted>> = match &mut dc_state {
            Some(dc) => candidates
                .iter()
                .map(|(gates, inputs)| {
                    score_candidate(circuit, options, budget, &ctx, Some(dc), gates, inputs)
                })
                .collect(),
            None => {
                let circuit: &Circuit = circuit;
                parallel_map(options.jobs, &candidates, |_, (gates, inputs)| {
                    score_candidate(circuit, options, budget, &ctx, None, gates, inputs)
                })
            }
        };
        let mut best: Option<Candidate> = None;
        for s in scored {
            if let Some(candidate) = s? {
                best = Some(match best {
                    None => candidate,
                    Some(b) => pick_better(b, candidate, options.objective),
                });
            }
        }
        let old_paths_at_g = labels[g.index()];
        let accept = best.as_ref().is_some_and(|b| match options.objective {
            Objective::Gates => {
                b.gate_reduction > 0 || (b.gate_reduction == 0 && b.new_paths_at_g < old_paths_at_g)
            }
            Objective::Paths => b.new_paths_at_g < old_paths_at_g,
            Objective::Combined { gate_weight, path_weight } => {
                combined_score(b, old_paths_at_g, gate_weight, path_weight) > 0
            }
        });
        if accept {
            let b = best.expect("accept implies candidate");
            // Mark the dying cone gates as consumed *before* rewiring (the
            // removable set is computed against the pre-rewire structure).
            for x in removable_gates(g, &b.gates, &output_mask, &fanout_counts, &fanout_table) {
                if x != g && x.index() < consumed.len() {
                    consumed[x.index()] = true;
                }
            }
            let (kind, fanins) = match &b.replacement {
                Replacement::Unit(spec) => {
                    let top = build_unit_in(circuit, &b.inputs, spec)?;
                    match top.kind {
                        GateKind::Const0 | GateKind::Const1 => (top.kind, Vec::new()),
                        k => (k, top.fanins),
                    }
                }
                Replacement::NegatedUnit(spec, negate) => {
                    let lines: Vec<NodeId> = b
                        .inputs
                        .iter()
                        .zip(negate)
                        .map(|(&line, &neg)| {
                            if neg {
                                circuit.add_gate(GateKind::Not, vec![line])
                            } else {
                                Ok(line)
                            }
                        })
                        .collect::<Result<_, _>>()?;
                    let top = build_unit_in(circuit, &lines, spec)?;
                    match top.kind {
                        GateKind::Const0 | GateKind::Const1 => (top.kind, Vec::new()),
                        k => (k, top.fanins),
                    }
                }
                Replacement::Cover(specs) => {
                    let outs: Vec<NodeId> = specs
                        .iter()
                        .map(|spec| {
                            let top = build_unit_in(circuit, &b.inputs, spec)?;
                            crate::unit::materialize_top(circuit, top)
                        })
                        .collect::<Result<_, _>>()?;
                    if outs.len() == 1 {
                        (GateKind::Buf, outs)
                    } else {
                        (GateKind::Or, outs)
                    }
                }
            };
            circuit.rewire(g, kind, fanins)?;
            replacements += 1;
            fanout_counts = circuit.fanout_counts();
            fanout_table = circuit.fanout_table();
            untouched = false;
            for i in &b.inputs {
                if i.index() < marked.len() && circuit.node(*i).kind().is_gate() {
                    marked[i.index()] = true;
                }
            }
        } else {
            if untouched {
                rejected[g.index()] = true;
            }
            // The single-gate candidate is implicitly selected: continue the
            // traversal through g's fanins (Procedure 2, step 2d).
            for f in circuit.node(g).fanins().to_vec() {
                if f.index() < marked.len() && circuit.node(f).kind().is_gate() {
                    marked[f.index()] = true;
                }
            }
        }
    }
    Ok(replacements)
}

fn combined_score(c: &Candidate, old_paths: u128, gate_weight: u32, path_weight: u32) -> i128 {
    let path_delta = old_paths as i128 - c.new_paths_at_g as i128;
    c.gate_reduction as i128 * gate_weight as i128 + path_delta * path_weight as i128
}

fn pick_better(a: Candidate, b: Candidate, objective: Objective) -> Candidate {
    match objective {
        Objective::Gates => {
            if (b.gate_reduction, std::cmp::Reverse(b.new_paths_at_g))
                > (a.gate_reduction, std::cmp::Reverse(a.new_paths_at_g))
            {
                b
            } else {
                a
            }
        }
        Objective::Paths => {
            if b.new_paths_at_g < a.new_paths_at_g {
                b
            } else {
                a
            }
        }
        Objective::Combined { gate_weight, path_weight } => {
            // old_paths cancels when comparing two candidates at the same g.
            let sa = combined_score(&a, 0, gate_weight, path_weight);
            let sb = combined_score(&b, 0, gate_weight, path_weight);
            if sb > sa {
                b
            } else {
                a
            }
        }
    }
}

/// Enumerates candidate subcircuits rooted at `g`: cones grown by absorbing
/// one fanin gate at a time, with at most `K` inputs (Section 4.1). Returns
/// `(cone gate set, ordered input cut)` pairs; the single-gate cone is
/// always first.
fn enumerate_candidates(
    circuit: &Circuit,
    g: NodeId,
    options: &ResynthOptions,
) -> Vec<(Vec<NodeId>, Vec<NodeId>)> {
    let inputs_of = |gates: &[NodeId]| -> Vec<NodeId> {
        let set: HashSet<NodeId> = gates.iter().copied().collect();
        let mut inputs = Vec::new();
        for &x in gates {
            for &f in circuit.node(x).fanins() {
                let kind = circuit.node(f).kind();
                if matches!(kind, GateKind::Const0 | GateKind::Const1) {
                    continue; // constants stay inside the cone
                }
                if !set.contains(&f) && !inputs.contains(&f) {
                    inputs.push(f);
                }
            }
        }
        inputs
    };

    let mut seen: HashSet<Vec<NodeId>> = HashSet::new();
    let mut result: Vec<(Vec<NodeId>, Vec<NodeId>)> = Vec::new();
    let mut queue: Vec<Vec<NodeId>> = vec![vec![g]];
    seen.insert(vec![g]);
    while let Some(gates) = queue.pop() {
        let inputs = inputs_of(&gates);
        if inputs.len() > options.max_inputs || inputs.is_empty() {
            continue;
        }
        result.push((gates.clone(), inputs.clone()));
        if result.len() >= options.max_candidates_per_gate {
            break;
        }
        for h in inputs {
            if !circuit.node(h).kind().is_gate() {
                continue;
            }
            let mut next = gates.clone();
            next.push(h);
            next.sort_unstable();
            if seen.insert(next.clone()) {
                queue.push(next);
            }
        }
    }
    result
}

/// The cone gates that die if `g` is rewired away from this cone: gates
/// (other than `g`) all of whose consumers are `g` or other dying gates,
/// and which drive no primary output. `g` itself is always included (its
/// old gate is replaced).
/// Per-gate read-only context shared by every candidate scoring of one
/// replacement site (and by all scoring workers).
struct ScoreCtx<'a> {
    g: NodeId,
    labels: &'a [u128],
    output_mask: &'a [bool],
    fanout_counts: &'a [u32],
    fanout_table: &'a [Vec<(NodeId, usize)>],
}

/// Scores one candidate cone at `ctx.g`: extracts the cone function,
/// identifies a comparison replacement (a unit, a negated-input unit, or a
/// cover), and computes the gate/path deltas. Returns `Ok(None)` when the
/// cone has no admissible replacement.
///
/// Read-only on the circuit — safe to call from worker threads. Consumes
/// one budget step (the pass's unit of work) before doing anything
/// expensive, so once the budget is exhausted all pending scorings return
/// immediately; concurrent workers can overshoot the step limit by at most
/// the number of in-flight calls.
fn score_candidate(
    circuit: &Circuit,
    options: &ResynthOptions,
    budget: &Budget,
    ctx: &ScoreCtx<'_>,
    dc: Option<&mut (sft_bdd::Manager, Vec<sft_bdd::BddRef>)>,
    gates: &[NodeId],
    inputs: &[NodeId],
) -> Result<Option<Candidate>, Exhausted> {
    budget.consume(1)?;
    let Ok(truth) = circuit.cone_function(ctx.g, inputs) else { return Ok(None) };
    // Don't-care-widened identification depends on the cut, not just the
    // function, so only the plain queries go through the P-class memo.
    let plain = |truth: &sft_truth::TruthTable| {
        if options.memoize_identification {
            crate::memo::identify_memo(truth, &options.identify)
        } else {
            identify(truth, &options.identify)
        }
    };
    let spec = match dc {
        Some((manager, per_node)) => match reachable_dc(manager, per_node, circuit, inputs) {
            Ok(Some(dc)) => identify_with_dc(&truth, &dc, &options.identify),
            _ => plain(&truth),
        },
        None => plain(&truth),
    };
    let (replacement, cost) = match spec {
        Some(spec) => {
            let Ok(cost) = unit_cost(&spec) else { return Ok(None) };
            (Replacement::Unit(spec), cost)
        }
        None => {
            let negated = options
                .allow_input_negation
                .then(|| identify_with_polarities(&truth, &options.identify))
                .flatten();
            if let Some((spec, negate)) = negated {
                // Inverters on unit inputs change neither the eq-2 count
                // nor the per-input path counts.
                let Ok(mut cost) = unit_cost(&spec) else { return Ok(None) };
                cost.depth += 1;
                (Replacement::NegatedUnit(spec, negate), cost)
            } else if options.max_cover_units > 1 {
                let cover = comparison_cover(&truth, &options.identify);
                if cover.is_empty() || cover.len() > options.max_cover_units {
                    return Ok(None);
                }
                let Ok(cost) = cover_cost(&cover) else { return Ok(None) };
                (Replacement::Cover(cover), cost)
            } else {
                return Ok(None);
            }
        }
    };
    // Old gate cost: g itself plus the cone gates that would die.
    let removable =
        removable_gates(ctx.g, gates, ctx.output_mask, ctx.fanout_counts, ctx.fanout_table);
    let old_cost: u64 = removable
        .iter()
        .map(|&x| {
            let n = circuit.node(x);
            two_input_cost(n.kind(), n.fanins().len())
        })
        .sum();
    let gate_reduction = old_cost as i64 - cost.two_input_gates as i64;
    let input_labels: Vec<u128> = inputs.iter().map(|i| ctx.labels[i.index()]).collect();
    let new_paths_at_g = cost.paths_with_labels(&input_labels);
    Ok(Some(Candidate {
        gates: gates.to_vec(),
        inputs: inputs.to_vec(),
        replacement,
        gate_reduction,
        new_paths_at_g,
    }))
}

fn removable_gates(
    g: NodeId,
    cone: &[NodeId],
    output_mask: &[bool],
    fanout_counts: &[u32],
    fanout_table: &[Vec<(NodeId, usize)>],
) -> Vec<NodeId> {
    let cone_set: HashSet<NodeId> = cone.iter().copied().collect();
    let mut removable: HashSet<NodeId> = cone_set.clone();
    removable.remove(&g);
    loop {
        let mut changed = false;
        let current: Vec<NodeId> = removable.iter().copied().collect();
        for x in current {
            let po_refs = output_mask[x.index()];
            let consumer_gates = &fanout_table[x.index()];
            let external_consumers = fanout_counts[x.index()] as usize != consumer_gates.len();
            let ok = !po_refs
                && !external_consumers
                && consumer_gates.iter().all(|&(c, _)| c == g || removable.contains(&c));
            if !ok {
                removable.remove(&x);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut v: Vec<NodeId> = removable.into_iter().collect();
    v.push(g);
    v.sort_unstable();
    v
}

/// The unreachable cone-input combinations (satisfiability don't-cares) of
/// a cut, as a truth table over the cut. Returns `None` when everything is
/// reachable. Node BDDs must come from the same circuit *before any pass
/// edits* — stale entries (for rewired nodes) make the result conservative
/// only if unchanged; to stay sound we recompute reachability only for cuts
/// whose lines all predate the pass (checked by the caller via index
/// bounds).
fn reachable_dc(
    manager: &mut sft_bdd::Manager,
    per_node: &[sft_bdd::BddRef],
    _circuit: &Circuit,
    inputs: &[NodeId],
) -> Result<Option<sft_truth::TruthTable>, sft_bdd::BddError> {
    if inputs.iter().any(|i| i.index() >= per_node.len()) {
        return Ok(None); // cut touches nodes created during this pass
    }
    let k = inputs.len();
    let mut dc = sft_truth::TruthTable::zero(k);
    for m in 0..(1u64 << k) {
        let mut acc = sft_bdd::BddRef::TRUE;
        for (i, &line) in inputs.iter().enumerate() {
            let bit = m >> (k - 1 - i) & 1 == 1;
            let f = per_node[line.index()];
            let lit = if bit { f } else { manager.not(f)? };
            acc = manager.and(acc, lit)?;
            if acc == sft_bdd::BddRef::FALSE {
                break;
            }
        }
        if acc == sft_bdd::BddRef::FALSE {
            dc = dc.or(&sft_truth::TruthTable::from_minterms(k, &[m]).expect("in range"));
        }
    }
    Ok(if dc.is_zero() { None } else { Some(dc) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_netlist::bench_format::parse;

    /// A chain of 2-input ANDs is a comparison function; Procedure 2 should
    /// keep its cost (no regression) and Procedure 3 must not increase
    /// paths.
    #[test]
    fn and_chain_is_stable() {
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\n\
t1 = AND(a, b)\nt2 = AND(t1, c)\ny = AND(t2, d)\n";
        let mut c = parse(src, "chain").unwrap();
        let before = c.two_input_gate_count();
        let report = procedure2(&mut c, &ResynthOptions::default()).unwrap();
        assert!(report.gates_after <= before);
        assert!(report.paths_after <= report.paths_before);
    }

    /// A redundant double implementation of an XOR-style compare collapses:
    /// y = (a AND !b) OR (!a AND b) is the interval [1,2] and becomes a
    /// 3-eq2-gate comparison unit instead of 3 gates + 2 inverters... the
    /// gate count must not increase and function must hold.
    #[test]
    fn xor_sop_replaced_without_regression() {
        let src = "\
INPUT(a)\nINPUT(b)\nOUTPUT(y)\nna = NOT(a)\nnb = NOT(b)\n\
t1 = AND(a, nb)\nt2 = AND(na, b)\ny = OR(t1, t2)\n";
        let original = parse(src, "xor").unwrap();
        let mut c = original.clone();
        let report = procedure2(&mut c, &ResynthOptions::default()).unwrap();
        assert!(report.gates_after <= report.gates_before);
        assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
    }

    /// An inefficient 2-of-2 detector: y = ab + ab(c + !c)-style padding
    /// reduces to a single AND.
    #[test]
    fn padded_and_collapses() {
        let src = "\
INPUT(a)\nINPUT(b)\nOUTPUT(y)\n\
t1 = AND(a, b)\nt2 = AND(b, a)\ny = OR(t1, t2)\n";
        let original = parse(src, "pad").unwrap();
        let mut c = original.clone();
        let report = procedure2(&mut c, &ResynthOptions::default()).unwrap();
        assert!(
            report.gates_after < report.gates_before,
            "redundant duplicate AND must collapse: {report}"
        );
        assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
    }

    #[test]
    fn procedure3_reduces_paths_on_wide_reconvergence() {
        // f = abc + ab!c has 6 paths as an SOP but is the single cube ab
        // (interval): paths drop to 2.
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nnc = NOT(c)\n\
t1 = AND(a, b)\np1 = AND(t1, c)\np2 = AND(t1, nc)\ny = OR(p1, p2)\n";
        let original = parse(src, "recon").unwrap();
        let mut c = original.clone();
        let report = procedure3(&mut c, &ResynthOptions::default()).unwrap();
        assert!(report.paths_after < report.paths_before, "{report}");
        assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
    }

    #[test]
    fn function_preserved_on_c17() {
        let src = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";
        let original = parse(src, "c17").unwrap();
        for objective in [
            Objective::Gates,
            Objective::Paths,
            Objective::Combined { gate_weight: 1, path_weight: 1 },
        ] {
            let mut c = original.clone();
            let opts = ResynthOptions { objective, ..ResynthOptions::default() };
            let report = resynthesize(&mut c, &opts).unwrap();
            assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
            assert!(report.gates_after <= report.gates_before || objective == Objective::Paths);
        }
    }

    #[test]
    fn candidate_enumeration_respects_k() {
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\nOUTPUT(y)\n\
t1 = AND(a, b)\nt2 = AND(c, d)\nt3 = AND(e, f)\nt4 = AND(t1, t2)\ny = AND(t4, t3)\n";
        let c = parse(src, "wide").unwrap();
        let y = c.outputs()[0];
        let opts = ResynthOptions { max_inputs: 4, ..ResynthOptions::default() };
        let candidates = enumerate_candidates(&c, y, &opts);
        assert!(candidates.iter().all(|(_, inputs)| inputs.len() <= 4));
        // The single-gate candidate is present.
        assert!(candidates.iter().any(|(gates, _)| gates.len() == 1));
        // With K=6 the full cone is reachable.
        let opts6 = ResynthOptions { max_inputs: 6, ..ResynthOptions::default() };
        let candidates6 = enumerate_candidates(&c, y, &opts6);
        assert!(candidates6.iter().any(|(gates, _)| gates.len() == 5));
    }

    #[test]
    fn removable_excludes_shared_gates() {
        // t1 fans out to y and z: replacing y's cone cannot remove t1.
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\n\
t1 = AND(a, b)\ny = OR(t1, c)\nz = NOT(t1)\n";
        let c = parse(src, "shared").unwrap();
        let y = c.outputs()[0];
        let t1 = c.iter().find(|(_, n)| n.name() == Some("t1")).map(|(id, _)| id).unwrap();
        let output_mask = {
            let mut m = vec![false; c.len()];
            for &o in c.outputs() {
                m[o.index()] = true;
            }
            m
        };
        let fo = c.fanout_counts();
        let ft = c.fanout_table();
        let removable = removable_gates(y, &[y, t1], &output_mask, &fo, &ft);
        assert!(!removable.contains(&t1), "shared gate must not be counted removable");
        assert!(removable.contains(&y));
    }

    #[test]
    fn dont_care_option_still_exact() {
        // With unreachable cone inputs, dc-identification may restructure
        // more aggressively; whole-circuit function must still hold.
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n\
na = NOT(a)\nt1 = AND(a, na)\nt2 = OR(t1, b)\ny = AND(t2, c)\n";
        let original = parse(src, "dc").unwrap();
        let mut c = original.clone();
        let opts =
            ResynthOptions { use_satisfiability_dont_cares: true, ..ResynthOptions::default() };
        resynthesize(&mut c, &opts).unwrap();
        assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
    }

    /// Concluding remark 2: with multi-unit covers enabled, a cone that is
    /// not a comparison function (majority) can still be replaced by an OR
    /// of units when that helps; the function must be preserved and gates
    /// must not regress relative to the single-unit run.
    #[test]
    fn multi_unit_cover_extension() {
        // A deliberately wasteful majority implementation: the flat SOP of
        // maj(a,b,c) duplicated through buffers.
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n\
t1 = AND(a, b)\nt2 = AND(a, c)\nt3 = AND(b, c)\no1 = OR(t1, t2)\ny = OR(o1, t3)\n";
        let original = parse(src, "maj").unwrap();
        let single = {
            let mut c = original.clone();
            procedure2(&mut c, &ResynthOptions::default()).unwrap();
            c
        };
        let multi = {
            let mut c = original.clone();
            let opts = ResynthOptions { max_cover_units: 3, ..ResynthOptions::default() };
            procedure2(&mut c, &opts).unwrap();
            c
        };
        assert!(sft_bdd::equivalent(&original, &multi).unwrap().is_equivalent());
        assert!(multi.two_input_gate_count() <= original.two_input_gate_count());
        // The extension can only widen the search space.
        assert!(multi.two_input_gate_count() <= single.two_input_gate_count());
    }

    /// The polarity extension finds replacements the plain procedure
    /// cannot: on-set {0, 3} over (b, c) inside a cone is a comparison
    /// function only after complementing one input.
    #[test]
    fn input_negation_extension_preserves_function() {
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n\
nb = NOT(b)\nnc = NOT(c)\nt1 = AND(nb, nc)\nt2 = AND(b, c)\no = OR(t1, t2)\ny = AND(a, o)\n";
        let original = parse(src, "xnor_cone").unwrap();
        let mut c = original.clone();
        let opts = ResynthOptions { allow_input_negation: true, ..ResynthOptions::default() };
        procedure2(&mut c, &opts).unwrap();
        assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
        assert!(c.two_input_gate_count() <= original.two_input_gate_count());
    }

    #[test]
    fn report_display() {
        let r = ResynthReport {
            passes: 2,
            replacements: 3,
            gates_before: 10,
            gates_after: 8,
            paths_before: PathCount::exact(100),
            paths_after: PathCount::exact(60),
            stop_reason: StopReason::Converged,
            verify_nodes: 0,
        };
        assert_eq!(
            r.to_string(),
            "2 passes, 3 replacements: gates 10 -> 8, paths 100 -> 60 (converged)"
        );
    }

    /// The wasteful XOR SOP used by the budget acceptance tests: several
    /// passes of work are available, so interruptions can land mid-run.
    fn budget_fixture() -> Circuit {
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nna = NOT(a)\nnb = NOT(b)\n\
t1 = AND(a, nb)\nt2 = AND(na, b)\nx = OR(t1, t2)\n\
p1 = AND(x, c)\np2 = AND(c, x)\ny = OR(p1, p2)\n";
        parse(src, "budget_fixture").unwrap()
    }

    /// A pre-expired deadline stops before the first pass: `Ok` report with
    /// `Deadline`, zero passes, and the circuit untouched.
    #[test]
    fn pre_expired_deadline_returns_input_unchanged() {
        let original = budget_fixture();
        let mut c = original.clone();
        let budget = Budget::unlimited().with_time_limit(std::time::Duration::ZERO);
        let report = resynthesize_with_budget(&mut c, &ResynthOptions::default(), &budget).unwrap();
        assert_eq!(report.stop_reason, StopReason::Deadline);
        assert_eq!(report.passes, 0);
        assert_eq!(report.replacements, 0);
        assert_eq!(report.gates_after, report.gates_before);
        assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
    }

    /// A tiny step budget interrupts candidate scoring mid-pass; the pass
    /// rolls back, the report is `Ok` with `StepBudget`, and the circuit is
    /// still equivalent to the input.
    #[test]
    fn step_budget_interrupts_mid_pass_and_rolls_back() {
        let original = budget_fixture();
        let mut c = original.clone();
        let budget = Budget::unlimited().with_step_limit(3);
        let report = resynthesize_with_budget(&mut c, &ResynthOptions::default(), &budget).unwrap();
        assert_eq!(report.stop_reason, StopReason::StepBudget, "{report}");
        assert_eq!(report.passes, 0, "an interrupted pass must not be counted");
        assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
    }

    /// A raised cancellation flag stops the run with `Cancelled` and the
    /// last committed circuit.
    #[test]
    fn cancellation_stops_the_run() {
        let original = budget_fixture();
        let mut c = original.clone();
        let flag = sft_budget::CancelFlag::new();
        flag.cancel();
        let budget = Budget::unlimited().with_cancel(flag);
        let report = resynthesize_with_budget(&mut c, &ResynthOptions::default(), &budget).unwrap();
        assert_eq!(report.stop_reason, StopReason::Cancelled);
        assert_eq!(report.passes, 0);
        assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
    }

    /// A generous budget changes nothing: same result as the unbudgeted
    /// run, stop reason still a natural completion.
    #[test]
    fn generous_budget_matches_unbudgeted_run() {
        let mut unbudgeted = budget_fixture();
        let r1 = resynthesize(&mut unbudgeted, &ResynthOptions::default()).unwrap();
        let mut budgeted = budget_fixture();
        let budget = Budget::unlimited()
            .with_time_limit(std::time::Duration::from_secs(3600))
            .with_step_limit(1_000_000);
        let r2 =
            resynthesize_with_budget(&mut budgeted, &ResynthOptions::default(), &budget).unwrap();
        assert_eq!(r1, r2);
        assert!(!r2.stop_reason.is_early());
        assert!(sft_bdd::equivalent(&unbudgeted, &budgeted).unwrap().is_equivalent());
    }

    /// When even the reference BDDs do not fit the verification manager,
    /// the run returns the untouched circuit with `BddBlowup` instead of an
    /// error — the anytime contract holds all the way down.
    #[test]
    fn reference_blowup_returns_input_unchanged() {
        let original = budget_fixture();
        let mut c = original.clone();
        let opts = ResynthOptions { verify_node_limit: 2, ..ResynthOptions::default() };
        let report = resynthesize(&mut c, &opts).unwrap();
        assert_eq!(report.stop_reason, StopReason::BddBlowup);
        assert_eq!(report.passes, 0);
        assert!(sft_bdd::equivalent(&original, &c).unwrap().is_equivalent());
    }

    /// The headline acceptance test: verification blows up only after the
    /// first committed pass, and the run keeps that pass's work —
    /// `replacements > 0`, `stop_reason: BddBlowup`, circuit equivalent to
    /// the input and strictly better than it.
    #[test]
    fn pass2_blowup_keeps_pass1_work() {
        // A seeded reconvergent circuit known to improve over several
        // passes (later passes absorb the unit gates the earlier ones
        // created), so the cumulative verification manager keeps growing
        // after pass 1.
        let original =
            sft_circuits::random::random_circuit(&sft_circuits::random::RandomCircuitConfig {
                inputs: 12,
                outputs: 6,
                gates: 80,
                window: 24,
                seed: 1,
            });
        // With compaction off the verification manager only grows, so
        // `verify_nodes` of a prefix run is a floor for the full run's and
        // the one-node-short limit below lands in a later pass.
        let base = ResynthOptions { compact_verifier: false, ..ResynthOptions::default() };
        let full = {
            let mut c = original.clone();
            resynthesize(&mut c, &base).unwrap()
        };
        let pass1 = {
            let mut c = original.clone();
            let opts = ResynthOptions { max_passes: 1, ..base.clone() };
            resynthesize(&mut c, &opts).unwrap()
        };
        assert!(full.passes >= 2, "fixture must take at least two passes: {full}");
        assert!(
            full.replacements > pass1.replacements,
            "later passes must do real work: {pass1} vs {full}"
        );
        // One node short of the full run's verification demand: the run
        // replays identically until the last allocating pass, whose
        // verification now blows up and rolls back.
        let limit = full.verify_nodes - 1;
        assert!(
            limit >= pass1.verify_nodes,
            "pass-1 verification must fit under the injected limit"
        );
        let mut c = original.clone();
        let opts = ResynthOptions { verify_node_limit: limit, ..base };
        let report = resynthesize(&mut c, &opts).unwrap();
        assert_eq!(report.stop_reason, StopReason::BddBlowup, "{report}");
        assert!(report.passes >= 1, "pass-1 commit must survive the blowup: {report}");
        assert!(report.replacements > 0, "pass-1 work must be kept: {report}");
        assert!(
            sft_bdd::equivalent(&original, &c).unwrap().is_equivalent(),
            "rollback must preserve the function"
        );
        assert!(
            c.two_input_gate_count() < original.two_input_gate_count(),
            "kept work must improve on the input"
        );
    }

    /// The tentpole invariant: P-class memoization and rejection replay are
    /// pure accelerations. On the bundled suite and on a multi-pass fixture
    /// that exercises the skip path, the final netlist and the report are
    /// bit-identical to a cold, fully re-scored run.
    #[test]
    fn memo_and_incremental_rescoring_match_full_rewalk() {
        let fast = ResynthOptions { max_candidates_per_gate: 60, ..ResynthOptions::default() };
        let slow = ResynthOptions {
            memoize_identification: false,
            incremental_rescoring: false,
            ..fast.clone()
        };
        let multi_pass =
            sft_circuits::random::random_circuit(&sft_circuits::random::RandomCircuitConfig {
                inputs: 12,
                outputs: 6,
                gates: 80,
                window: 24,
                seed: 1,
            });
        let mut circuits: Vec<Circuit> =
            sft_circuits::suite::suite_small().into_iter().map(|e| e.circuit).collect();
        circuits.push(multi_pass);
        for original in circuits {
            let mut a = original.clone();
            let mut b = original.clone();
            let ra = resynthesize(&mut a, &fast).unwrap();
            let rb = resynthesize(&mut b, &slow).unwrap();
            assert_eq!(ra, rb, "{}: reports must match", original.name());
            assert_eq!(a, b, "{}: netlists must be bit-identical", original.name());
        }
    }

    /// Compacting the verification manager between passes changes neither
    /// the result nor the decisions, and its peak node count never exceeds
    /// the monotone (uncompacted) manager's.
    #[test]
    fn verifier_compaction_is_transparent_and_bounded() {
        let original =
            sft_circuits::random::random_circuit(&sft_circuits::random::RandomCircuitConfig {
                inputs: 12,
                outputs: 6,
                gates: 80,
                window: 24,
                seed: 1,
            });
        let compacted_opts = ResynthOptions { compact_verifier: true, ..ResynthOptions::default() };
        let monotone_opts = ResynthOptions { compact_verifier: false, ..ResynthOptions::default() };
        let mut compacted = original.clone();
        let rc = resynthesize(&mut compacted, &compacted_opts).unwrap();
        let mut monotone = original.clone();
        let rm = resynthesize(&mut monotone, &monotone_opts).unwrap();
        assert!(rc.passes >= 2, "fixture must take at least two passes: {rc}");
        assert_eq!(compacted, monotone, "compaction must not change the netlist");
        assert_eq!((rc.passes, rc.replacements), (rm.passes, rm.replacements));
        assert_eq!((rc.gates_after, rc.paths_after), (rm.gates_after, rm.paths_after));
        assert!(
            rc.verify_nodes <= rm.verify_nodes,
            "compacted peak {} must not exceed monotone peak {}",
            rc.verify_nodes,
            rm.verify_nodes
        );
    }
}
