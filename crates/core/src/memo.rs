//! The process-wide comparison-identification memo tables.
//!
//! Exact identification ([`crate::identify`] with
//! [`IdentifyMethod::Exact`]) answers a question about the *function*, not
//! about any particular cone: whether some input permutation maps the
//! on-set onto one decimal interval. *Whether* such a permutation exists is
//! therefore a P-class invariant and is decided once per class, keyed by
//! the canonical signature from [`sft_canon`], in a shared
//! [`SigCache`].
//!
//! *Which* certificate the search returns is **not** class-invariant: two
//! P-equivalent tables can be witnessed by intervals with different bounds
//! (a single minterm is `[m, m]` for whatever value `m` the permutation
//! gives it), and the bounds feed [`crate::unit::unit_cost`] and the unit's
//! input ordering — so handing a remapped class certificate to a caller
//! could change replacement decisions. To keep memoized runs bit-identical
//! to cold runs, positive answers are served from a second table keyed by
//! the **exact** truth table, whose entries are always the certificate
//! [`identify`] itself produced for that very table. A positive class
//! verdict whose exact table has not been seen yet re-runs [`identify`]
//! directly — cheap, since constructing a witness is the fast path; the
//! expensive exhaustive refutations are exactly the negative verdicts the
//! class table shares.
//!
//! Queries probe the exact table **first**: canonicalizing a table costs
//! more than a typical 5-input exact search (the signature search explores
//! the same permutation space), so the class table only earns its keep on
//! *fresh* exact tables whose class has already been refuted or confirmed.
//! Repeat queries — the common case inside one circuit, where the same cut
//! function recurs along a regular structure — are answered by one hash
//! probe with no canonicalization at all.
//!
//! Both tables are shared across cones, passes, and circuits for the
//! lifetime of the process. [`identify_cache_stats`] exposes combined
//! hit/miss counters (surfaced by the CLI and the benchmark reports);
//! [`identify_cache_clear`] resets both tables for cold-start timing.
//!
//! Capped permutation search ([`IdentifyMethod::Permutations`]) is *not*
//! memoized: its verdict depends on where the cap cuts the enumeration, so
//! two P-equivalent tables can legitimately answer differently and a
//! class-keyed cache would change results. Those queries pass straight
//! through to [`identify`].

use crate::identify::{identify, IdentifyMethod, IdentifyOptions};
use crate::ComparisonSpec;
use sft_canon::persist::{self, ByteReader, PersistError};
use sft_canon::{signature_of, CacheStats, SigCache, Signature};
use sft_truth::TruthTable;
use std::path::Path;
use std::sync::OnceLock;

static CLASS: OnceLock<SigCache<Option<ComparisonSpec>>> = OnceLock::new();
static EXACT: OnceLock<SigCache<Option<ComparisonSpec>>> = OnceLock::new();

fn class_cache() -> &'static SigCache<Option<ComparisonSpec>> {
    CLASS.get_or_init(SigCache::new)
}

fn exact_cache() -> &'static SigCache<Option<ComparisonSpec>> {
    EXACT.get_or_init(SigCache::new)
}

/// Distinguishes option sets that could cache different answers. Only the
/// fields that influence an **exact** identification matter; the
/// permutation cap does not (it is ignored by the exact method).
fn options_salt(options: &IdentifyOptions) -> u64 {
    u64::from(options.try_complement)
}

/// The exact-table key: the raw (uncanonicalized) bits under the same salt.
fn exact_signature(f: &TruthTable, salt: u64) -> Signature {
    Signature { bits: f.bits(), inputs: f.inputs() as u8, salt }
}

/// Memoized [`identify`], bit-identical to the direct call: negative
/// verdicts are shared across the whole P-class, positive certificates are
/// replayed per exact truth table and are always the ones [`identify`]
/// produced for that table.
///
/// Falls back to a direct (uncached) call when `options.method` is not
/// [`IdentifyMethod::Exact`] — see the module docs for why capped searches
/// must not share a class-keyed cache.
pub fn identify_memo(f: &TruthTable, options: &IdentifyOptions) -> Option<ComparisonSpec> {
    if options.method != IdentifyMethod::Exact {
        return identify(f, options);
    }
    let salt = options_salt(options);
    let exact_sig = exact_signature(f, salt);
    if let Some(answer) = exact_cache().lookup(&exact_sig) {
        return answer;
    }
    let (sig, canon_perm) = signature_of(f, salt);
    let verdict = class_cache().get_or_insert_with(sig, || {
        identify(&TruthTable::from_bits(f.inputs(), sig.bits), options)
    });
    let answer = match verdict {
        None => None,
        Some(class_spec) => {
            // The class is a comparison class, so `f` has a certificate;
            // serve the one `identify` computes for `f` itself (the class
            // table's canonical certificate may be witnessed by a different
            // interval).
            let spec = identify(f, options).unwrap_or_else(|| {
                unreachable!("comparison-function existence is a P-class invariant")
            });
            debug_assert_eq!(
                {
                    // Cross-check the class certificate: remapped through
                    // the canonicalizing permutation it must certify `f`.
                    let remapped = ComparisonSpec {
                        perm: class_spec.perm.iter().map(|&j| canon_perm[j]).collect(),
                        ..class_spec
                    };
                    remapped.to_table()
                },
                *f,
                "remapped class certificate must certify f"
            );
            Some(spec)
        }
    };
    exact_cache().insert(exact_sig, answer.clone());
    answer
}

/// Combined counters of the process-wide identification tables: a *hit* is
/// a query answered from the exact table or from an already-decided class
/// verdict (either way the exponential existence search was skipped); a
/// *miss* is a query that had to decide a fresh class. `entries` counts
/// both tables.
pub fn identify_cache_stats() -> CacheStats {
    let class = class_cache().stats();
    let exact = exact_cache().stats();
    CacheStats {
        hits: exact.hits + class.hits,
        misses: class.misses,
        entries: class.entries + exact.entries,
    }
}

/// Clears both process-wide identification tables and their counters.
/// Benchmark harnesses call this before each timed run so earlier runs (or
/// other circuits) do not pre-warm the tables.
pub fn identify_cache_clear() {
    class_cache().clear();
    exact_cache().clear();
}

/// Shards of the process-wide tables rebuilt after a panic poisoned their
/// lock (see [`SigCache::poison_recoveries`]). Surfaced by the daemon's
/// degradation counters.
pub fn identify_cache_poison_recoveries() -> u64 {
    class_cache().poison_recoveries() + exact_cache().poison_recoveries()
}

/// Encodes one identification table as a byte section: an entry count,
/// then the entries in the deterministic export order. Two tables with the
/// same entries encode byte-identically regardless of insertion order.
fn encode_table(cache: &SigCache<Option<ComparisonSpec>>) -> Vec<u8> {
    let entries = cache.export_entries();
    let mut out = Vec::with_capacity(16 + entries.len() * 32);
    persist::put_u64(&mut out, entries.len() as u64);
    for (sig, value) in entries {
        persist::put_u128(&mut out, sig.bits);
        out.push(sig.inputs);
        persist::put_u64(&mut out, sig.salt);
        match value {
            None => out.push(0),
            Some(spec) => {
                out.push(1);
                out.push(spec.perm.len() as u8);
                out.extend(spec.perm.iter().map(|&p| p as u8));
                persist::put_u64(&mut out, spec.lower);
                persist::put_u64(&mut out, spec.upper);
                out.push(u8::from(spec.complemented));
            }
        }
    }
    out
}

/// Decodes a table section, validating every certificate before anything
/// is returned — a corrupt or hand-edited image yields a typed error,
/// never a panic or an invalid in-memory certificate.
fn decode_table(bytes: &[u8]) -> Result<Vec<(Signature, Option<ComparisonSpec>)>, PersistError> {
    let mut reader = ByteReader::new(bytes);
    let count = reader.u64()?;
    let mut entries = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        let bits = reader.u128()?;
        let inputs = reader.u8()?;
        let salt = reader.u64()?;
        let value = match reader.u8()? {
            0 => None,
            1 => {
                let n = reader.u8()? as usize;
                let perm: Vec<usize> = reader.bytes(n)?.iter().map(|&b| usize::from(b)).collect();
                let lower = reader.u64()?;
                let upper = reader.u64()?;
                let complemented = match reader.u8()? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(PersistError::Malformed(format!("bad complement flag {other}")))
                    }
                };
                let spec = if complemented {
                    ComparisonSpec::new_complemented(perm, lower, upper)
                } else {
                    ComparisonSpec::new(perm, lower, upper)
                }
                .map_err(|e| PersistError::Malformed(format!("invalid certificate: {e}")))?;
                Some(spec)
            }
            other => return Err(PersistError::Malformed(format!("bad value tag {other}"))),
        };
        entries.push((Signature { bits, inputs, salt }, value));
    }
    if reader.remaining() != 0 {
        return Err(PersistError::Malformed(format!(
            "{} trailing bytes after the last entry",
            reader.remaining()
        )));
    }
    Ok(entries)
}

/// Serializes both process-wide identification tables to `path` through
/// the crash-safe container of [`sft_canon::persist`] (versioned header,
/// trailing checksum, atomic write-then-rename). The image depends only on
/// the tables' *contents*: equal tables save byte-identical files.
///
/// # Errors
///
/// [`PersistError::Io`] on filesystem failures.
pub fn identify_cache_save(path: &Path) -> Result<(), PersistError> {
    persist::save(path, &[encode_table(class_cache()), encode_table(exact_cache())])
}

/// Loads a persisted image into the process-wide tables, merging over
/// whatever they already hold (entries are deterministic per key, so a
/// collision overwrites with an equal value). The whole image is decoded
/// and validated **before** the live tables are touched — a file that
/// fails integrity or structural checks imports nothing. Returns the
/// number of entries imported.
///
/// # Errors
///
/// [`PersistError::NotFound`] for a missing file (normal cold start); any
/// other [`PersistError`] means the file is untrustworthy and should be
/// quarantined ([`sft_canon::persist::quarantine`]) while the process
/// rebuilds the tables from cold.
pub fn identify_cache_load(path: &Path) -> Result<usize, PersistError> {
    let sections = persist::load(path)?;
    let [class_bytes, exact_bytes] = sections.as_slice() else {
        return Err(PersistError::Malformed(format!(
            "expected 2 table sections, found {}",
            sections.len()
        )));
    };
    let class = decode_table(class_bytes)?;
    let exact = decode_table(exact_bytes)?;
    let count = class.len() + exact.len();
    class_cache().import_entries(class);
    exact_cache().import_entries(exact);
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact() -> IdentifyOptions {
        IdentifyOptions { method: IdentifyMethod::Exact, ..IdentifyOptions::default() }
    }

    // NOTE: the caches are process-global and the test harness runs tests
    // concurrently in one process, so these tests never call
    // `identify_cache_clear` (it would race sibling tests) and only make
    // monotonic or key-local assertions about the counters.

    /// The memoized path returns exactly what direct identification
    /// returns — certificate and all — whether the tables are cold or warm.
    #[test]
    fn memo_is_bit_identical_to_direct() {
        let opts = exact();
        let mut rng = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..200 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let f = TruthTable::from_bits(4, u128::from(rng >> 32 & 0xffff));
            let direct = identify(&f, &opts);
            assert_eq!(identify_memo(&f, &opts), direct, "cold: {f:?}");
            assert_eq!(identify_memo(&f, &opts), direct, "warm: {f:?}");
        }
    }

    /// P-equivalent queries share one class verdict: the second lookup is
    /// a hit, and each query still gets its own table's certificate.
    #[test]
    fn permuted_queries_hit_the_same_class_entry() {
        let opts = exact();
        // The paper's f2 (a comparison function) in two input orders.
        let f = TruthTable::from_minterms(4, &[1, 5, 6, 9, 10, 14]).unwrap();
        let g = f.permute(&[2, 0, 3, 1]).unwrap();
        let before = identify_cache_stats();
        let sf = identify_memo(&f, &opts).expect("comparison function");
        let sg = identify_memo(&g, &opts).expect("P-equivalent, still one");
        let after = identify_cache_stats();
        assert!(after.hits > before.hits, "second query must hit");
        assert_eq!(sf, identify(&f, &opts).unwrap());
        assert_eq!(sg, identify(&g, &opts).unwrap());
        assert_eq!(sf.to_table(), f);
        assert_eq!(sg.to_table(), g);
    }

    /// Filling a fresh local table with real identification answers,
    /// encoding it, importing the bytes into another fresh table and
    /// re-encoding must reproduce the bytes exactly — the persisted image
    /// is a pure function of table contents (save→load→save is
    /// byte-identical).
    #[test]
    fn encode_import_encode_is_byte_identical() {
        let opts = exact();
        let original: SigCache<Option<ComparisonSpec>> = SigCache::new();
        let mut rng = 0x9E37_79B9u64;
        for _ in 0..150 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let f = TruthTable::from_bits(4, u128::from(rng >> 32 & 0xffff));
            let (sig, _) = signature_of(&f, options_salt(&opts));
            original.insert(sig, identify(&f, &opts));
        }
        let image = encode_table(&original);
        let decoded = decode_table(&image).expect("decode own encoding");
        let restored: SigCache<Option<ComparisonSpec>> = SigCache::new();
        restored.import_entries(decoded);
        assert_eq!(encode_table(&restored), image, "round trip must be byte-identical");
    }

    /// Corrupt table payloads are typed errors, never panics, and a bad
    /// image imports nothing.
    #[test]
    fn corrupt_payloads_are_rejected_with_typed_errors() {
        // Truncation at every 1/8 of a real section.
        let cache: SigCache<Option<ComparisonSpec>> = SigCache::new();
        let f = TruthTable::from_minterms(4, &[1, 5, 6, 9, 10, 14]).unwrap();
        let (sig, _) = signature_of(&f, 0);
        cache.insert(sig, identify(&f, &exact()));
        cache.insert(Signature { bits: 77, inputs: 4, salt: 0 }, None);
        let image = encode_table(&cache);
        for octile in 1..8 {
            let cut = image.len() * octile / 8;
            if cut == image.len() {
                continue;
            }
            assert!(decode_table(&image[..cut]).is_err(), "cut at {cut} must fail");
        }
        // A structurally invalid certificate (complement flag out of range).
        let mut bad = image.clone();
        let len = bad.len();
        bad[len - 1] = 7;
        assert!(matches!(decode_table(&bad), Err(PersistError::Malformed(_))));

        // File-level: wrong section count is malformed, garbage is rejected,
        // and neither path panics or imports anything.
        let dir = std::env::temp_dir().join(format!("sft-memo-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let one_section = dir.join("one-section.bin");
        persist::save(&one_section, &[encode_table(&cache)]).expect("save");
        assert!(matches!(identify_cache_load(&one_section), Err(PersistError::Malformed(_))));
        let garbage = dir.join("garbage.bin");
        std::fs::write(&garbage, b"not a cache file at all").expect("write");
        assert!(identify_cache_load(&garbage).unwrap_err().is_corruption());
        assert!(matches!(
            identify_cache_load(&dir.join("absent.bin")),
            Err(PersistError::NotFound)
        ));
    }

    /// Saving the process-wide tables and loading them back merges cleanly
    /// (all keys still answer identically) — the global wrapper over the
    /// byte-stable core.
    #[test]
    fn global_save_load_merges_identically() {
        let opts = exact();
        let f = TruthTable::from_minterms(4, &[3, 7, 11, 15]).unwrap();
        let before = identify_memo(&f, &opts);
        let dir = std::env::temp_dir().join(format!("sft-memo-global-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("cache.bin");
        identify_cache_save(&path).expect("save");
        let imported = identify_cache_load(&path).expect("load");
        assert!(imported >= 1, "the table had at least f's entries");
        assert_eq!(identify_memo(&f, &opts), before, "merge must not change answers");
    }

    /// Non-exact methods bypass the tables entirely: after a capped query,
    /// the queried class still has no entry.
    #[test]
    fn capped_method_is_not_cached() {
        let opts =
            IdentifyOptions { method: IdentifyMethod::Permutations, ..IdentifyOptions::default() };
        // A 7-input table no other test queries, so a stored entry could
        // only come from this call.
        let f = TruthTable::from_bits(7, 0x0123_4567_89ab_cdef_0055_aa33_cc0f_f0c3);
        let _ = identify_memo(&f, &opts);
        let (sig, _) = signature_of(&f, options_salt(&opts));
        assert!(
            class_cache().lookup(&sig).is_none(),
            "capped identification must not populate the shared class table"
        );
        assert!(
            exact_cache().lookup(&exact_signature(&f, options_salt(&opts))).is_none(),
            "capped identification must not populate the exact table"
        );
    }
}
