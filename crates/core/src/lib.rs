//! Comparison functions, comparison units and the synthesis-for-testability
//! procedures of Pomeranz & Reddy, *"On Synthesis-for-Testability of
//! Combinational Logic Circuits"*, 32nd DAC, 1995.
//!
//! A **comparison function** (Definition 1 of the paper) is a single-output
//! Boolean function whose 1-minterms, under some permutation of the inputs,
//! are exactly the integers of one interval `[L, U]`. Such functions are
//! implemented by **comparison units** — a `>=L` block, a `<=U` block and an
//! output AND gate — which have at most two paths from any input to the
//! output and are fully robustly testable for path delay faults.
//!
//! The crate provides, crate-by-module:
//!
//! - [`ComparisonSpec`] — the certificate `(permutation, L, U, complement)`;
//! - [`identify`] — deciding whether a function is a comparison function
//!   (the paper's capped permutation search *and* an exact recursive
//!   decomposition; both also handle the complemented case used in the
//!   paper's experiments, and optionally satisfiability don't-cares);
//! - [`mod@unit`] — constructing comparison units (Figures 1–5: `>=L`/`<=U`
//!   blocks, free variables, trivial-bound omission, same-kind gate
//!   merging) and costing them;
//! - [`testability`] — the constructive robust two-pattern test set of
//!   Section 3.3 (reproducing Table 1);
//! - [`cover`] — expressing an arbitrary function as an OR of comparison
//!   units (the extension sketched in Section 3.1);
//! - [`resynth`] — Procedures 2 and 3: local replacement of subcircuits by
//!   comparison units to minimize the equivalent 2-input gate count or the
//!   path count.
//!
//! # Examples
//!
//! The paper's running example `f₂` (Section 3.1) is a comparison function
//! under the input-reversal permutation with `L = 5`, `U = 10`:
//!
//! ```
//! use sft_core::{identify, IdentifyOptions};
//! use sft_truth::TruthTable;
//!
//! let f2 = TruthTable::from_minterms(4, &[1, 5, 6, 9, 10, 14])?;
//! let spec = identify(&f2, &IdentifyOptions::default()).expect("f2 is a comparison function");
//! assert_eq!((spec.lower, spec.upper), (5, 10));
//! assert!(!spec.complemented);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod cover;
mod identify;
pub mod memo;
pub mod resynth;
mod spec;
pub mod testability;
pub mod unit;

pub use identify::{
    identify, identify_with_dc, identify_with_polarities, IdentifyMethod, IdentifyOptions,
};
pub use memo::{
    identify_cache_clear, identify_cache_load, identify_cache_poison_recoveries,
    identify_cache_save, identify_cache_stats, identify_memo,
};
pub use resynth::{
    procedure2, procedure3, resynthesize, resynthesize_with_budget, Objective, ResynthError,
    ResynthOptions, ResynthReport,
};
pub use sft_budget::{Budget, CancelFlag, Exhausted, StopReason};
pub use sft_canon::CacheStats;
pub use spec::{ComparisonSpec, SpecError};
pub use unit::{build_standalone_unit, build_unit_in, UnitCost};
