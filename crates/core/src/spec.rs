use sft_truth::{TruthTable, MAX_INPUTS};
use std::fmt;

/// Errors from [`ComparisonSpec`] validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The permutation is not a bijection on `0..n`.
    BadPermutation,
    /// `lower > upper` (an empty interval must use
    /// `ComparisonSpec::constant` instead).
    EmptyInterval,
    /// A bound does not fit in `n` bits.
    BoundOutOfRange,
    /// More inputs than [`MAX_INPUTS`].
    TooManyInputs(usize),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::BadPermutation => write!(f, "permutation is not a bijection"),
            SpecError::EmptyInterval => write!(f, "lower bound exceeds upper bound"),
            SpecError::BoundOutOfRange => write!(f, "bound does not fit in the input count"),
            SpecError::TooManyInputs(n) => {
                write!(f, "{n} inputs exceed the supported {MAX_INPUTS}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// The certificate that a function is a comparison function
/// (Definition 1 of the paper): a permutation of its inputs and two bounds.
///
/// Under the permutation, input `perm[i]` of the original function plays the
/// role of the paper's `x_{i+1}` — position 0 is the **most significant
/// bit** of the minterm value. The function is 1 exactly on minterms whose
/// decimal value `m` satisfies `lower <= m <= upper`; when
/// [`complemented`](Self::complemented) is set, the *complement* of the
/// function has that form (the paper's experiments check both, Section 5).
///
/// # Examples
///
/// ```
/// use sft_core::ComparisonSpec;
///
/// // x1 AND x2 is >=3 over 2 inputs.
/// let spec = ComparisonSpec::new(vec![0, 1], 3, 3)?;
/// let t = spec.to_table();
/// assert_eq!(t.on_set().collect::<Vec<_>>(), vec![3]);
/// # Ok::<(), sft_core::SpecError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ComparisonSpec {
    /// `perm[i]` = original input index playing the role of `x_{i+1}`
    /// (MSB-first).
    pub perm: Vec<usize>,
    /// The lower bound `L` (inclusive).
    pub lower: u64,
    /// The upper bound `U` (inclusive).
    pub upper: u64,
    /// Whether the certificate describes the complement of the function.
    pub complemented: bool,
}

impl fmt::Display for ComparisonSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.complemented {
            write!(f, "NOT ")?;
        }
        write!(f, "[{}, {}] under (", self.lower, self.upper)?;
        for (i, p) in self.perm.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "y{}", p + 1)?;
        }
        write!(f, ")")
    }
}

impl ComparisonSpec {
    /// Creates and validates a spec.
    ///
    /// # Errors
    ///
    /// See [`SpecError`].
    pub fn new(perm: Vec<usize>, lower: u64, upper: u64) -> Result<Self, SpecError> {
        let spec = ComparisonSpec { perm, lower, upper, complemented: false };
        spec.validate()?;
        Ok(spec)
    }

    /// Like [`new`](Self::new) but describing the complement of the target
    /// function.
    ///
    /// # Errors
    ///
    /// See [`SpecError`].
    pub fn new_complemented(perm: Vec<usize>, lower: u64, upper: u64) -> Result<Self, SpecError> {
        let spec = ComparisonSpec { perm, lower, upper, complemented: true };
        spec.validate()?;
        Ok(spec)
    }

    /// Validates permutation and bounds.
    ///
    /// # Errors
    ///
    /// See [`SpecError`].
    pub fn validate(&self) -> Result<(), SpecError> {
        let n = self.perm.len();
        if n > MAX_INPUTS {
            return Err(SpecError::TooManyInputs(n));
        }
        let mut seen = [false; MAX_INPUTS];
        for &p in &self.perm {
            if p >= n || seen[p] {
                return Err(SpecError::BadPermutation);
            }
            seen[p] = true;
        }
        if self.lower > self.upper {
            return Err(SpecError::EmptyInterval);
        }
        let max = if n == 0 { 0 } else { (1u64 << n) - 1 };
        if self.upper > max {
            return Err(SpecError::BoundOutOfRange);
        }
        Ok(())
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.perm.len()
    }

    /// Bit `i` (MSB-first, `i < n`) of the lower bound.
    pub fn lower_bit(&self, i: usize) -> bool {
        self.lower >> (self.inputs() - 1 - i) & 1 == 1
    }

    /// Bit `i` (MSB-first) of the upper bound.
    pub fn upper_bit(&self, i: usize) -> bool {
        self.upper >> (self.inputs() - 1 - i) & 1 == 1
    }

    /// Number of leading *free variables* (Definition 2): positions where
    /// the bounds agree.
    pub fn free_count(&self) -> usize {
        (0..self.inputs()).take_while(|&i| self.lower_bit(i) == self.upper_bit(i)).count()
    }

    /// Whether the `>=L_F` block is trivial (the non-free suffix of `L` is
    /// all zeros) and can be omitted (Section 3.2.2).
    pub fn geq_block_trivial(&self) -> bool {
        (self.free_count()..self.inputs()).all(|i| !self.lower_bit(i))
    }

    /// Whether the `<=U_F` block is trivial (suffix of `U` all ones).
    pub fn leq_block_trivial(&self) -> bool {
        (self.free_count()..self.inputs()).all(|i| self.upper_bit(i))
    }

    /// Expands the spec into the truth table of the function it certifies
    /// (complement included).
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid.
    pub fn to_table(&self) -> TruthTable {
        self.validate().expect("valid spec");
        let n = self.inputs();
        TruthTable::from_fn(n, |m| {
            // Permuted value: x_{i+1} = input perm[i]; bit of m for original
            // input j is m >> (n-1-j).
            let mut v = 0u64;
            for (i, &p) in self.perm.iter().enumerate() {
                let bit = m >> (n - 1 - p) & 1;
                v |= bit << (n - 1 - i);
            }
            let inside = self.lower <= v && v <= self.upper;
            inside != self.complemented
        })
    }

    /// The threshold-function view of Section 3: weights `2^(n-i)` for
    /// `x_i` and thresholds `(L, U + 1)` — the `>=L` block is the threshold
    /// function `sum >= L`, the `<=U` block the complement of `sum >= U+1`.
    /// Returns `(weights_by_original_input, t_lower, t_upper_plus_one)`.
    pub fn threshold_view(&self) -> (Vec<u64>, u64, u64) {
        let n = self.inputs();
        let mut weights = vec![0u64; n];
        for (i, &p) in self.perm.iter().enumerate() {
            weights[p] = 1 << (n - 1 - i);
        }
        (weights, self.lower, self.upper + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_f2_spec_round_trip() {
        // f2 under reversal: L=5, U=10 (Section 3.1 example).
        let spec = ComparisonSpec::new(vec![3, 2, 1, 0], 5, 10).unwrap();
        let t = spec.to_table();
        assert_eq!(t.on_set().collect::<Vec<_>>(), vec![1, 5, 6, 9, 10, 14]);
    }

    #[test]
    fn identity_perm_spec() {
        let spec = ComparisonSpec::new(vec![0, 1, 2], 2, 5).unwrap();
        assert_eq!(spec.to_table().on_set().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn complemented_spec() {
        let spec = ComparisonSpec::new_complemented(vec![0, 1], 1, 2).unwrap();
        assert_eq!(spec.to_table().on_set().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn free_variables_definition2() {
        // L=5=(0101), U=7=(0111): free = {x1, x2} (paper, Section 3.2.1).
        let spec = ComparisonSpec::new(vec![0, 1, 2, 3], 5, 7).unwrap();
        assert_eq!(spec.free_count(), 2);
        assert!(!spec.geq_block_trivial());
        assert!(spec.leq_block_trivial());
    }

    #[test]
    fn single_cube_case() {
        // L=6, U=7 over 3 inputs: f = x1 x2 (Section 3.2.2 example).
        let spec = ComparisonSpec::new(vec![0, 1, 2], 6, 7).unwrap();
        assert_eq!(spec.free_count(), 2);
        assert!(spec.geq_block_trivial());
        assert!(spec.leq_block_trivial());
    }

    #[test]
    fn validation_rejects_garbage() {
        assert_eq!(ComparisonSpec::new(vec![0, 0], 0, 1).unwrap_err(), SpecError::BadPermutation);
        assert_eq!(ComparisonSpec::new(vec![0, 1], 3, 1).unwrap_err(), SpecError::EmptyInterval);
        assert_eq!(ComparisonSpec::new(vec![0, 1], 0, 4).unwrap_err(), SpecError::BoundOutOfRange);
        assert!(ComparisonSpec::new((0..8).collect(), 0, 1).is_err());
    }

    #[test]
    fn threshold_view_weights() {
        let spec = ComparisonSpec::new(vec![1, 0, 2], 2, 6).unwrap();
        let (w, tl, tu) = spec.threshold_view();
        // x1 = original input 1 -> weight 4; x2 = input 0 -> 2; x3 = input 2 -> 1.
        assert_eq!(w, vec![2, 4, 1]);
        assert_eq!((tl, tu), (2, 7));
        // Check the threshold semantics against the table.
        let t = spec.to_table();
        for m in 0..8u64 {
            let sum: u64 = (0..3).map(|j| (m >> (2 - j) & 1) * w[j]).sum();
            assert_eq!(t.value(m), sum >= tl && sum < tu);
        }
    }

    #[test]
    fn display_is_readable() {
        let spec = ComparisonSpec::new(vec![1, 0], 1, 2).unwrap();
        assert_eq!(spec.to_string(), "[1, 2] under (y2, y1)");
    }
}
