//! Expressing arbitrary functions as ORs of comparison units.
//!
//! Section 3.1 of the paper notes that any function `f` can be written as
//! `f = f_1 + f_2 + ... + f_k` with every `f_i` a comparison function, by
//! partitioning the on-set into intervals; `f` is then an OR of `k`
//! comparison units. The paper restricts its experiments to `k = 1`; this
//! module implements the general construction as the extension the paper
//! sketches.
//!
//! The partition is found greedily: for each candidate permutation (up to a
//! budget), the on-set is split into maximal runs of consecutive values;
//! the permutation minimizing the number of runs wins. One run = one
//! comparison unit.

use crate::{ComparisonSpec, IdentifyOptions};
use sft_budget::Budget;
use sft_netlist::{Circuit, GateKind, NodeId};
use sft_truth::TruthTable;

/// Partitions the on-set of `f` into comparison functions (one spec per
/// interval). The specs OR together to exactly `f`. Constant-0 yields an
/// empty cover.
///
/// The permutation budget of `options` bounds the search; the identity
/// permutation is always tried, so a cover always exists (worst case: one
/// interval per isolated run of on-minterms).
///
/// # Examples
///
/// ```
/// use sft_core::cover::comparison_cover;
/// use sft_core::IdentifyOptions;
/// use sft_truth::TruthTable;
///
/// // Majority needs more than one unit...
/// let maj = TruthTable::from_minterms(3, &[3, 5, 6, 7])?;
/// let cover = comparison_cover(&maj, &IdentifyOptions::default());
/// assert!(cover.len() >= 2);
/// // ...and the cover reproduces it exactly.
/// let mut acc = TruthTable::zero(3);
/// for spec in &cover {
///     acc = acc.or(&spec.to_table());
/// }
/// assert_eq!(acc, maj);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn comparison_cover(f: &TruthTable, options: &IdentifyOptions) -> Vec<ComparisonSpec> {
    comparison_cover_with_budget(f, options, &Budget::unlimited())
}

/// Like [`comparison_cover`] but under an effort [`Budget`].
///
/// One step is consumed per candidate permutation. The search is anytime:
/// the identity permutation is evaluated before the budget can cut in, so
/// exhaustion degrades the cover (possibly more units than the unbudgeted
/// search would find) but never fails to produce one.
pub fn comparison_cover_with_budget(
    f: &TruthTable,
    options: &IdentifyOptions,
    budget: &Budget,
) -> Vec<ComparisonSpec> {
    if f.is_zero() {
        return Vec::new();
    }
    let n = f.inputs();
    let mut best: Option<Vec<ComparisonSpec>> = None;
    let mut perm: Vec<usize> = (0..n).collect();
    let mut tried = 0usize;
    loop {
        let g = f.permute(&perm).expect("valid permutation");
        let runs = runs_of(&g);
        let candidate: Vec<ComparisonSpec> = runs
            .into_iter()
            .map(|(l, u)| {
                ComparisonSpec::new(perm.clone(), l, u).expect("runs are valid intervals")
            })
            .collect();
        if best.as_ref().is_none_or(|b| candidate.len() < b.len()) {
            best = Some(candidate);
        }
        if let Some(b) = &best {
            if b.len() == 1 {
                break;
            }
        }
        tried += 1;
        if budget.consume(1).is_err()
            || tried >= options.max_permutations.max(1)
            || !next_perm(&mut perm)
        {
            break;
        }
    }
    best.expect("identity permutation always tried")
}

fn runs_of(g: &TruthTable) -> Vec<(u64, u64)> {
    let mut runs = Vec::new();
    let mut current: Option<(u64, u64)> = None;
    for m in g.on_set() {
        current = match current {
            Some((l, u)) if m == u + 1 => Some((l, m)),
            Some(run) => {
                runs.push(run);
                Some((m, m))
            }
            None => Some((m, m)),
        };
    }
    if let Some(run) = current {
        runs.push(run);
    }
    runs
}

fn next_perm(p: &mut [usize]) -> bool {
    if p.len() < 2 {
        return false;
    }
    let mut i = p.len() - 1;
    while i > 0 && p[i - 1] >= p[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = p.len() - 1;
    while p[j] <= p[i - 1] {
        j -= 1;
    }
    p.swap(i - 1, j);
    p[i..].reverse();
    true
}

/// Builds `f` as `k` comparison units driving an OR gate, inside `circuit`,
/// over the given input lines. Returns the output node.
///
/// # Errors
///
/// Returns an error if unit construction fails.
///
/// # Panics
///
/// Panics if `inputs.len() != f.inputs()`.
pub fn build_cover_in(
    circuit: &mut Circuit,
    inputs: &[NodeId],
    f: &TruthTable,
    options: &IdentifyOptions,
) -> Result<NodeId, sft_netlist::NetlistError> {
    assert_eq!(inputs.len(), f.inputs(), "input line count mismatch");
    let cover = comparison_cover(f, options);
    if cover.is_empty() {
        return Ok(circuit.add_const(false));
    }
    build_units_or(circuit, inputs, &cover)
}

/// Builds the units for `specs` over `inputs` and ORs their outputs;
/// returns the output node (the single unit's output when `specs.len() ==
/// 1`).
///
/// # Errors
///
/// Returns an error if unit construction fails.
///
/// # Panics
///
/// Panics if `specs` is empty.
pub fn build_units_or(
    circuit: &mut Circuit,
    inputs: &[NodeId],
    specs: &[ComparisonSpec],
) -> Result<NodeId, sft_netlist::NetlistError> {
    assert!(!specs.is_empty(), "at least one unit required");
    let mut unit_outputs = Vec::with_capacity(specs.len());
    for spec in specs {
        let top = crate::unit::build_unit_in(circuit, inputs, spec)?;
        unit_outputs.push(crate::unit::materialize_top(circuit, top)?);
    }
    if unit_outputs.len() == 1 {
        Ok(unit_outputs[0])
    } else {
        circuit.add_gate(GateKind::Or, unit_outputs)
    }
}

/// The cost (equivalent 2-input gates, per-input path counts, depth) of an
/// OR-of-units implementation of `specs` — the multi-unit analogue of
/// [`crate::unit::unit_cost`], used by the resynthesis extension that
/// replaces one subcircuit with several comparison units (the paper's
/// concluding remark 2).
///
/// # Errors
///
/// Returns an error if construction fails.
///
/// # Panics
///
/// Panics if `specs` is empty.
pub fn cover_cost(
    specs: &[ComparisonSpec],
) -> Result<crate::unit::UnitCost, sft_netlist::NetlistError> {
    assert!(!specs.is_empty(), "at least one unit required");
    let n = specs[0].inputs();
    let mut c = Circuit::new("cover_cost");
    let inputs: Vec<NodeId> = (0..n).map(|i| c.add_input(format!("y{i}"))).collect();
    let out = build_units_or(&mut c, &inputs, specs)?;
    c.add_output(out, "f");
    let input_paths = inputs.iter().map(|&i| c.path_count_between(i, out) as u64).collect();
    Ok(crate::unit::UnitCost {
        two_input_gates: c.two_input_gate_count(),
        input_paths,
        depth: c.depth(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover_table(cover: &[ComparisonSpec], n: usize) -> TruthTable {
        let mut acc = TruthTable::zero(n);
        for spec in cover {
            acc = acc.or(&spec.to_table());
        }
        acc
    }

    #[test]
    fn every_3_input_function_covered_exactly() {
        let opts = IdentifyOptions::default();
        for bits in 0..=255u128 {
            let f = TruthTable::from_bits(3, bits);
            let cover = comparison_cover(&f, &opts);
            assert_eq!(cover_table(&cover, 3), f, "cover mismatch for {bits:#x}");
        }
    }

    #[test]
    fn comparison_functions_get_single_unit_covers() {
        let opts = IdentifyOptions::default();
        let f = ComparisonSpec::new(vec![1, 0, 2], 2, 5).unwrap().to_table();
        let cover = comparison_cover(&f, &opts);
        assert_eq!(cover.len(), 1);
    }

    #[test]
    fn parity_needs_many_units() {
        let opts = IdentifyOptions::default();
        let f = TruthTable::from_fn(4, |m| m.count_ones() % 2 == 1);
        let cover = comparison_cover(&f, &opts);
        // Parity on-minterms {1,2,4,7,8,11,13,14} fall into 5 maximal runs
        // under the identity permutation ({1,2}, {4}, {7,8}, {11}, {13,14});
        // no permutation does better than 5 for 4-input parity.
        assert_eq!(cover.len(), 5);
        assert_eq!(cover_table(&cover, 4), f);
    }

    #[test]
    fn build_cover_in_circuit_matches_function() {
        let opts = IdentifyOptions::default();
        let f = TruthTable::from_minterms(3, &[0, 3, 5, 6]).unwrap();
        let mut c = Circuit::new("cover");
        let ins: Vec<NodeId> = (0..3).map(|i| c.add_input(format!("y{}", i + 1))).collect();
        let out = build_cover_in(&mut c, &ins, &f, &opts).unwrap();
        c.add_output(out, "f");
        for m in 0..8u64 {
            let a: Vec<bool> = (0..3).map(|j| m >> (2 - j) & 1 == 1).collect();
            assert_eq!(c.eval_assignment(&a)[0], f.value(m), "minterm {m}");
        }
    }

    #[test]
    fn exhausted_budget_still_yields_a_valid_cover() {
        let opts = IdentifyOptions::default();
        let f = TruthTable::from_fn(4, |m| m.count_ones() % 2 == 1);
        let budget = Budget::unlimited().with_step_limit(0);
        let cover = comparison_cover_with_budget(&f, &opts, &budget);
        // Only the identity permutation ran, but the cover is still exact.
        assert_eq!(cover_table(&cover, 4), f);
        let full = comparison_cover(&f, &opts);
        assert!(cover.len() >= full.len());
    }

    #[test]
    fn zero_function_empty_cover() {
        let opts = IdentifyOptions::default();
        assert!(comparison_cover(&TruthTable::zero(3), &opts).is_empty());
        let mut c = Circuit::new("z");
        let ins: Vec<NodeId> = (0..3).map(|i| c.add_input(format!("y{i}"))).collect();
        let out = build_cover_in(&mut c, &ins, &TruthTable::zero(3), &opts).unwrap();
        c.add_output(out, "f");
        assert_eq!(c.eval_assignment(&[true, true, true]), vec![false]);
    }
}
