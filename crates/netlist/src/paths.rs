//! Procedure 1 of the paper: counting paths from the primary inputs to every
//! line and to the primary outputs.
//!
//! The label `N_p(g)` of a line `g` is the number of distinct paths from any
//! primary input to `g`. Primary inputs get label 1, a gate output is
//! labelled with the sum of its fanin labels, and a fanout branch inherits
//! its stem's label (implicit in the DAG representation). The total number
//! of paths of the circuit is the sum of the primary-output labels.

use crate::{Circuit, GateKind};
use std::fmt;

/// A path count that remembers whether it overflowed `u128`.
///
/// Procedure 1 sums path labels; on adversarial inputs (deep reconvergence)
/// the sum can exceed `u128`. The arithmetic saturates, and this type keeps
/// the saturation explicit so reports can print `.. +` instead of a silently
/// clamped number.
///
/// Ordering compares the numeric value first, with a saturated count ranked
/// above the exact count of the same value (a saturated count is a lower
/// bound on the true count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PathCount {
    value: u128,
    saturated: bool,
}

impl PathCount {
    /// The zero count.
    pub const ZERO: PathCount = PathCount { value: 0, saturated: false };

    /// An exact (non-saturated) count.
    pub fn exact(value: u128) -> Self {
        PathCount { value, saturated: false }
    }

    /// The numeric value; a lower bound on the true count when
    /// [`is_saturated`](Self::is_saturated).
    pub fn value(self) -> u128 {
        self.value
    }

    /// Whether the count overflowed and was clamped to `u128::MAX`.
    pub fn is_saturated(self) -> bool {
        self.saturated
    }

    /// Saturating addition; the result is marked saturated if either operand
    /// was, or if the sum overflows.
    pub fn saturating_add(self, other: PathCount) -> PathCount {
        let (value, overflow) = self.value.overflowing_add(other.value);
        if overflow {
            PathCount { value: u128::MAX, saturated: true }
        } else {
            PathCount { value, saturated: self.saturated || other.saturated }
        }
    }
}

impl fmt::Display for PathCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.saturated {
            write!(f, "{}+", self.value)
        } else {
            write!(f, "{}", self.value)
        }
    }
}

impl From<u128> for PathCount {
    fn from(value: u128) -> Self {
        PathCount::exact(value)
    }
}

impl std::ops::Add for PathCount {
    type Output = PathCount;

    fn add(self, other: PathCount) -> PathCount {
        self.saturating_add(other)
    }
}

impl std::iter::Sum for PathCount {
    fn sum<I: Iterator<Item = PathCount>>(iter: I) -> PathCount {
        iter.fold(PathCount::ZERO, PathCount::saturating_add)
    }
}

impl Circuit {
    /// The path label `N_p` for every node (Procedure 1 of the paper), with
    /// explicit saturation tracking.
    ///
    /// Constants have label 0 (no path from a primary input reaches them);
    /// primary inputs have label 1. Sums saturate at `u128::MAX` with the
    /// [`PathCount::is_saturated`] flag set (the paper's largest benchmark
    /// has 2.3×10⁷ paths; saturation exists only as a safety net for
    /// adversarial inputs).
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic.
    pub fn path_labels_exact(&self) -> Vec<PathCount> {
        let order = self.topo_order().expect("combinational circuit");
        let mut labels = vec![PathCount::ZERO; self.len()];
        for id in order {
            let node = self.node(id);
            labels[id.index()] = match node.kind() {
                GateKind::Input => PathCount::exact(1),
                GateKind::Const0 | GateKind::Const1 => PathCount::ZERO,
                _ => node
                    .fanins()
                    .iter()
                    .fold(PathCount::ZERO, |acc, f| acc.saturating_add(labels[f.index()])),
            };
        }
        labels
    }

    /// The path label `N_p` for every node as plain `u128` values (clamped
    /// at `u128::MAX` on overflow; see [`path_labels_exact`](Self::path_labels_exact)
    /// for the saturation-aware form).
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic.
    pub fn path_labels(&self) -> Vec<u128> {
        self.path_labels_exact().into_iter().map(PathCount::value).collect()
    }

    /// Total number of input-to-output paths (Procedure 1, Step 5): the sum
    /// of the primary-output labels, with explicit saturation tracking.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic.
    pub fn path_count_exact(&self) -> PathCount {
        let labels = self.path_labels_exact();
        self.outputs().iter().fold(PathCount::ZERO, |acc, o| acc.saturating_add(labels[o.index()]))
    }

    /// Total number of input-to-output paths as a plain `u128` (clamped at
    /// `u128::MAX` on overflow; see [`path_count_exact`](Self::path_count_exact)
    /// for the saturation-aware form).
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic.
    pub fn path_count(&self) -> u128 {
        self.path_count_exact().value()
    }

    /// Number of paths from node `from` to node `to` (0 if `to` is not in
    /// the transitive fanout of `from`). This is the `K_p` quantity of
    /// Section 2 of the paper when applied inside a subcircuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic or either id is out of range.
    pub fn path_count_between(&self, from: crate::NodeId, to: crate::NodeId) -> u128 {
        let order = self.topo_order().expect("combinational circuit");
        let mut labels = vec![0u128; self.len()];
        labels[from.index()] = 1;
        for id in order {
            if id == from {
                continue;
            }
            let node = self.node(id);
            if node.kind().is_gate() {
                labels[id.index()] = node
                    .fanins()
                    .iter()
                    .fold(0u128, |acc, f| acc.saturating_add(labels[f.index()]));
            }
        }
        labels[to.index()]
    }
}

#[cfg(test)]
mod tests {
    use crate::{Circuit, GateKind};

    /// The paper's Section 2 example: a 3-cube SOP where the two equivalent
    /// covers yield 310 vs 300 paths given external labels.
    #[test]
    fn section2_example_path_arithmetic() {
        // Build f_{1,1} = !x1 x2 x4 + x1 !x2 !x3 + x2 !x3 x4 as a flat SOP.
        // Instead of external labels 10/100/20/20 we emulate them by fanning
        // each input through a tree of buffers is overkill; here we check
        // K_p directly: each input appears K_p times as a literal.
        let mut c = Circuit::new("f11");
        let x: Vec<_> = (1..=4).map(|i| c.add_input(format!("x{i}"))).collect();
        let nx: Vec<_> = x.iter().map(|&xi| c.add_gate(GateKind::Not, vec![xi]).unwrap()).collect();
        let p1 = c.add_gate(GateKind::And, vec![nx[0], x[1], x[3]]).unwrap();
        let p2 = c.add_gate(GateKind::And, vec![x[0], nx[1], nx[2]]).unwrap();
        let p3 = c.add_gate(GateKind::And, vec![x[1], nx[2], x[3]]).unwrap();
        let f = c.add_gate(GateKind::Or, vec![p1, p2, p3]).unwrap();
        c.add_output(f, "f");

        // K_p(x1)=2, K_p(x2)=3, K_p(x3)=2, K_p(x4)=2 per the paper.
        let kp: Vec<u128> = x.iter().map(|&xi| c.path_count_between(xi, f)).collect();
        assert_eq!(kp, vec![2, 3, 2, 2]);
        // Total paths with unit input labels = sum of K_p.
        assert_eq!(c.path_count(), 9);
    }

    #[test]
    fn fanout_multiplies_paths() {
        // y = (a AND b) OR (a AND c): a has two paths.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("c");
        let g1 = c.add_gate(GateKind::And, vec![a, b]).unwrap();
        let g2 = c.add_gate(GateKind::And, vec![a, d]).unwrap();
        let g3 = c.add_gate(GateKind::Or, vec![g1, g2]).unwrap();
        c.add_output(g3, "y");
        assert_eq!(c.path_count(), 4);
        let labels = c.path_labels();
        assert_eq!(labels[g3.index()], 4);
        assert_eq!(labels[a.index()], 1);
    }

    #[test]
    fn constants_contribute_no_paths() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let k = c.add_const(true);
        let g = c.add_gate(GateKind::And, vec![a, k]).unwrap();
        c.add_output(g, "y");
        assert_eq!(c.path_count(), 1);
    }

    #[test]
    fn multiple_outputs_sum() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.add_gate(GateKind::Not, vec![a]).unwrap();
        c.add_output(g, "y1");
        c.add_output(g, "y2");
        assert_eq!(c.path_count(), 2);
    }

    #[test]
    fn deep_chain_of_reconvergence_is_exponential() {
        // k stages of x -> (x AND x') style reconvergence double paths.
        let mut c = Circuit::new("t");
        let mut cur = c.add_input("a");
        for _ in 0..20 {
            let l = c.add_gate(GateKind::Buf, vec![cur]).unwrap();
            let r = c.add_gate(GateKind::Not, vec![cur]).unwrap();
            cur = c.add_gate(GateKind::Or, vec![l, r]).unwrap();
        }
        c.add_output(cur, "y");
        assert_eq!(c.path_count(), 1 << 20);
    }

    #[test]
    fn saturation_is_flagged_not_silent() {
        use crate::paths::PathCount;
        // 128 doubling stages push the count past u128::MAX.
        let mut c = Circuit::new("t");
        let mut cur = c.add_input("a");
        for _ in 0..130 {
            let l = c.add_gate(GateKind::Buf, vec![cur]).unwrap();
            let r = c.add_gate(GateKind::Not, vec![cur]).unwrap();
            cur = c.add_gate(GateKind::Or, vec![l, r]).unwrap();
        }
        c.add_output(cur, "y");
        let total = c.path_count_exact();
        assert!(total.is_saturated());
        assert_eq!(total.value(), u128::MAX);
        assert_eq!(format!("{total}"), format!("{}+", u128::MAX));
        // The clamped u128 view is still the lower bound.
        assert_eq!(c.path_count(), u128::MAX);
        // An unsaturated circuit stays exact.
        let exact = PathCount::exact(9);
        assert!(!exact.is_saturated());
        assert_eq!(format!("{exact}"), "9");
        // Ordering: a saturated MAX ranks above an exact MAX.
        assert!(total > PathCount::exact(u128::MAX));
        // Sum propagates the flag.
        let s: PathCount = [exact, total].into_iter().sum();
        assert!(s.is_saturated());
    }

    #[test]
    fn path_count_between_is_zero_outside_fanout() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, vec![a, b]).unwrap();
        c.add_output(g, "y");
        assert_eq!(c.path_count_between(g, a), 0);
        assert_eq!(c.path_count_between(a, g), 1);
        assert_eq!(c.path_count_between(a, a), 1);
    }
}
