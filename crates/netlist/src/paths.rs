//! Procedure 1 of the paper: counting paths from the primary inputs to every
//! line and to the primary outputs.
//!
//! The label `N_p(g)` of a line `g` is the number of distinct paths from any
//! primary input to `g`. Primary inputs get label 1, a gate output is
//! labelled with the sum of its fanin labels, and a fanout branch inherits
//! its stem's label (implicit in the DAG representation). The total number
//! of paths of the circuit is the sum of the primary-output labels.

use crate::{Circuit, GateKind};

impl Circuit {
    /// The path label `N_p` for every node (Procedure 1 of the paper).
    ///
    /// Constants have label 0 (no path from a primary input reaches them);
    /// primary inputs have label 1. Sums saturate at `u128::MAX` (the
    /// paper's largest benchmark has 2.3×10⁷ paths; saturation exists only
    /// as a safety net for adversarial inputs).
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic.
    pub fn path_labels(&self) -> Vec<u128> {
        let order = self.topo_order().expect("combinational circuit");
        let mut labels = vec![0u128; self.len()];
        for id in order {
            let node = self.node(id);
            labels[id.index()] = match node.kind() {
                GateKind::Input => 1,
                GateKind::Const0 | GateKind::Const1 => 0,
                _ => node
                    .fanins()
                    .iter()
                    .fold(0u128, |acc, f| acc.saturating_add(labels[f.index()])),
            };
        }
        labels
    }

    /// Total number of input-to-output paths (Procedure 1, Step 5):
    /// the sum of the primary-output labels.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic.
    pub fn path_count(&self) -> u128 {
        let labels = self.path_labels();
        self.outputs().iter().fold(0u128, |acc, o| acc.saturating_add(labels[o.index()]))
    }

    /// Number of paths from node `from` to node `to` (0 if `to` is not in
    /// the transitive fanout of `from`). This is the `K_p` quantity of
    /// Section 2 of the paper when applied inside a subcircuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic or either id is out of range.
    pub fn path_count_between(&self, from: crate::NodeId, to: crate::NodeId) -> u128 {
        let order = self.topo_order().expect("combinational circuit");
        let mut labels = vec![0u128; self.len()];
        labels[from.index()] = 1;
        for id in order {
            if id == from {
                continue;
            }
            let node = self.node(id);
            if node.kind().is_gate() {
                labels[id.index()] = node
                    .fanins()
                    .iter()
                    .fold(0u128, |acc, f| acc.saturating_add(labels[f.index()]));
            }
        }
        labels[to.index()]
    }
}

#[cfg(test)]
mod tests {
    use crate::{Circuit, GateKind};

    /// The paper's Section 2 example: a 3-cube SOP where the two equivalent
    /// covers yield 310 vs 300 paths given external labels.
    #[test]
    fn section2_example_path_arithmetic() {
        // Build f_{1,1} = !x1 x2 x4 + x1 !x2 !x3 + x2 !x3 x4 as a flat SOP.
        // Instead of external labels 10/100/20/20 we emulate them by fanning
        // each input through a tree of buffers is overkill; here we check
        // K_p directly: each input appears K_p times as a literal.
        let mut c = Circuit::new("f11");
        let x: Vec<_> = (1..=4).map(|i| c.add_input(format!("x{i}"))).collect();
        let nx: Vec<_> =
            x.iter().map(|&xi| c.add_gate(GateKind::Not, vec![xi]).unwrap()).collect();
        let p1 = c.add_gate(GateKind::And, vec![nx[0], x[1], x[3]]).unwrap();
        let p2 = c.add_gate(GateKind::And, vec![x[0], nx[1], nx[2]]).unwrap();
        let p3 = c.add_gate(GateKind::And, vec![x[1], nx[2], x[3]]).unwrap();
        let f = c.add_gate(GateKind::Or, vec![p1, p2, p3]).unwrap();
        c.add_output(f, "f");

        // K_p(x1)=2, K_p(x2)=3, K_p(x3)=2, K_p(x4)=2 per the paper.
        let kp: Vec<u128> = x.iter().map(|&xi| c.path_count_between(xi, f)).collect();
        assert_eq!(kp, vec![2, 3, 2, 2]);
        // Total paths with unit input labels = sum of K_p.
        assert_eq!(c.path_count(), 9);
    }

    #[test]
    fn fanout_multiplies_paths() {
        // y = (a AND b) OR (a AND c): a has two paths.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("c");
        let g1 = c.add_gate(GateKind::And, vec![a, b]).unwrap();
        let g2 = c.add_gate(GateKind::And, vec![a, d]).unwrap();
        let g3 = c.add_gate(GateKind::Or, vec![g1, g2]).unwrap();
        c.add_output(g3, "y");
        assert_eq!(c.path_count(), 4);
        let labels = c.path_labels();
        assert_eq!(labels[g3.index()], 4);
        assert_eq!(labels[a.index()], 1);
    }

    #[test]
    fn constants_contribute_no_paths() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let k = c.add_const(true);
        let g = c.add_gate(GateKind::And, vec![a, k]).unwrap();
        c.add_output(g, "y");
        assert_eq!(c.path_count(), 1);
    }

    #[test]
    fn multiple_outputs_sum() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.add_gate(GateKind::Not, vec![a]).unwrap();
        c.add_output(g, "y1");
        c.add_output(g, "y2");
        assert_eq!(c.path_count(), 2);
    }

    #[test]
    fn deep_chain_of_reconvergence_is_exponential() {
        // k stages of x -> (x AND x') style reconvergence double paths.
        let mut c = Circuit::new("t");
        let mut cur = c.add_input("a");
        for _ in 0..20 {
            let l = c.add_gate(GateKind::Buf, vec![cur]).unwrap();
            let r = c.add_gate(GateKind::Not, vec![cur]).unwrap();
            cur = c.add_gate(GateKind::Or, vec![l, r]).unwrap();
        }
        c.add_output(cur, "y");
        assert_eq!(c.path_count(), 1 << 20);
    }

    #[test]
    fn path_count_between_is_zero_outside_fanout() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, vec![a, b]).unwrap();
        c.add_output(g, "y");
        assert_eq!(c.path_count_between(g, a), 0);
        assert_eq!(c.path_count_between(a, g), 1);
        assert_eq!(c.path_count_between(a, a), 1);
    }
}
