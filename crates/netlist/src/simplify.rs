//! Structural simplification passes.
//!
//! Each pass takes a mutable [`Circuit`] and returns the number of changes it
//! made, so passes can be iterated to a fixpoint ([`normalize`]). All passes
//! preserve the circuit function (for every primary-output slot).
//!
//! Every structural change here goes through [`Circuit::rewire`], so inside
//! an open edit transaction the passes journal automatically and are undone
//! by [`Circuit::rollback_to`]; when maintained views are enabled each
//! rewire patches them in place. Only [`normalize`] calls [`Circuit::sweep`]
//! (which compacts ids and therefore refuses to run mid-transaction); the
//! other passes are safe at any transaction depth.

use crate::{Circuit, GateKind, NodeId};
use std::collections::HashMap;

/// Folds constants through gates and simplifies duplicate fanins.
///
/// Rules (per gate, applied until the gate stabilizes):
/// - AND/NAND: a `Const0` fanin forces the output; `Const1` fanins drop.
/// - OR/NOR: a `Const1` fanin forces the output; `Const0` fanins drop.
/// - XOR/XNOR: `Const0` fanins drop; each `Const1` fanin toggles the output
///   inversion; duplicated fanins cancel pairwise.
/// - AND/OR/NAND/NOR: duplicate fanins dedupe.
/// - A gate left with one fanin becomes a `Buf`/`Not`; with none, a constant.
/// - `Buf`/`Not` of a constant folds.
///
/// Returns the number of nodes changed.
pub fn propagate_constants(c: &mut Circuit) -> usize {
    let order = c.topo_order().expect("combinational circuit");
    let mut changed = 0;
    for id in order {
        let node = c.node(id);
        let kind = node.kind();
        if !kind.is_gate() {
            continue;
        }
        let fanins: Vec<NodeId> = node.fanins().to_vec();
        let (new_kind, new_fanins) = fold_gate(c, kind, &fanins);
        if new_kind != kind || new_fanins != fanins {
            c.rewire(id, new_kind, new_fanins).expect("folding cannot create cycles");
            changed += 1;
        }
    }
    changed
}

fn const_of(c: &Circuit, id: NodeId) -> Option<bool> {
    match c.node(id).kind() {
        GateKind::Const0 => Some(false),
        GateKind::Const1 => Some(true),
        _ => None,
    }
}

/// Computes the folded (kind, fanins) for a gate without mutating the
/// circuit. Constants required by the folded form must already exist; we
/// reuse any constant node present or keep the gate in a normalized
/// `Const`-kind with no fanins.
fn fold_gate(c: &Circuit, kind: GateKind, fanins: &[NodeId]) -> (GateKind, Vec<NodeId>) {
    match kind {
        GateKind::Buf | GateKind::Not => {
            if let Some(v) = const_of(c, fanins[0]) {
                let out = if kind == GateKind::Not { !v } else { v };
                (if out { GateKind::Const1 } else { GateKind::Const0 }, Vec::new())
            } else {
                (kind, fanins.to_vec())
            }
        }
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
            let controlling = kind.controlling_value().expect("and/or family");
            let inverts = kind.inverts();
            let mut kept: Vec<NodeId> = Vec::with_capacity(fanins.len());
            for &f in fanins {
                match const_of(c, f) {
                    Some(v) if v == controlling => {
                        // Output forced to controlling ^ inversion semantics:
                        // AND with 0 -> 0, NAND with 0 -> 1, OR with 1 -> 1,
                        // NOR with 1 -> 0.
                        let out = match kind {
                            GateKind::And => false,
                            GateKind::Nand => true,
                            GateKind::Or => true,
                            GateKind::Nor => false,
                            _ => unreachable!(),
                        };
                        return (if out { GateKind::Const1 } else { GateKind::Const0 }, Vec::new());
                    }
                    Some(_) => {} // non-controlling constant: drop
                    None => {
                        if !kept.contains(&f) {
                            kept.push(f);
                        }
                    }
                }
            }
            match kept.len() {
                0 => {
                    // Empty AND = 1, empty OR = 0, then inversion.
                    let base = matches!(kind, GateKind::And | GateKind::Nand);
                    let out = base != inverts;
                    (if out { GateKind::Const1 } else { GateKind::Const0 }, Vec::new())
                }
                1 => (if inverts { GateKind::Not } else { GateKind::Buf }, kept),
                _ => (kind, kept),
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut invert = kind == GateKind::Xnor;
            let mut kept: Vec<NodeId> = Vec::with_capacity(fanins.len());
            for &f in fanins {
                match const_of(c, f) {
                    Some(true) => invert = !invert,
                    Some(false) => {}
                    None => {
                        // Pairwise cancellation of duplicates.
                        if let Some(pos) = kept.iter().position(|&k| k == f) {
                            kept.remove(pos);
                        } else {
                            kept.push(f);
                        }
                    }
                }
            }
            match kept.len() {
                0 => (if invert { GateKind::Const1 } else { GateKind::Const0 }, Vec::new()),
                1 => (if invert { GateKind::Not } else { GateKind::Buf }, kept),
                _ => (if invert { GateKind::Xnor } else { GateKind::Xor }, kept),
            }
        }
        _ => (kind, fanins.to_vec()),
    }
}

/// Collapses buffers: consumers of a `Buf` read its fanin directly. The
/// buffer node itself is left in place (swept later if dead). Double
/// inverters are collapsed the same way (`Not(Not(x))` consumers read `x`).
///
/// Returns the number of fanin references rewritten.
pub fn collapse_buffers(c: &mut Circuit) -> usize {
    // target[i] = the line consumers should read instead of i.
    let order = c.topo_order().expect("combinational circuit");
    let mut target: Vec<NodeId> = (0..c.len()).map(NodeId::from_index).collect();
    for id in order {
        let node = c.node(id);
        match node.kind() {
            GateKind::Buf => target[id.index()] = target[node.fanins()[0].index()],
            GateKind::Not => {
                let inner = target[node.fanins()[0].index()];
                if c.node(inner).kind() == GateKind::Not {
                    target[id.index()] = target[c.node(inner).fanins()[0].index()];
                }
            }
            _ => {}
        }
    }
    let mut changed = 0;
    for i in 0..c.len() {
        let id = NodeId::from_index(i);
        let node = c.node(id);
        if !node.kind().is_gate() {
            continue;
        }
        let fanins: Vec<NodeId> = node.fanins().to_vec();
        let new: Vec<NodeId> = fanins.iter().map(|f| target[f.index()]).collect();
        if new != fanins {
            let kind = node.kind();
            // Re-fold in case dedup opportunities appear.
            let (k2, f2) = fold_gate(c, kind, &new);
            c.rewire(id, k2, f2).expect("redirecting to equivalent lines is acyclic");
            changed += 1;
        }
    }
    changed
}

/// Merges same-kind AND/OR chains: a fanin that is the same kind of gate
/// (AND into AND, OR into OR) and has no other consumer is inlined into its
/// consumer, producing a wider gate. This implements the paper's gate
/// merging (Fig. 4: "when k consecutive gates have the same type, they can
/// be combined into a k+1 input gate").
///
/// Returns the number of inlined gates.
pub fn merge_chains(c: &mut Circuit) -> usize {
    let mut total = 0;
    loop {
        // The snapshot-per-sweep contract is deliberate: merging decisions
        // within one sweep are made against the sweep-start counts. When the
        // maintained view is live we read the same snapshot out of it instead
        // of re-deriving the fanout table.
        let counts: Vec<u32> = match c.views() {
            Some(v) => (0..c.len()).map(|i| v.fanout_count(NodeId::from_index(i))).collect(),
            None => c.fanout_counts(),
        };
        let order = c.topo_order().expect("combinational circuit");
        let mut changed = 0;
        for id in order {
            let kind = c.node(id).kind();
            if !matches!(kind, GateKind::And | GateKind::Or) {
                continue;
            }
            let fanins: Vec<NodeId> = c.node(id).fanins().to_vec();
            let mut new_fanins: Vec<NodeId> = Vec::with_capacity(fanins.len());
            let mut merged = false;
            for f in fanins {
                let fnode = c.node(f);
                if fnode.kind() == kind && counts[f.index()] == 1 {
                    for &g in fnode.fanins() {
                        if !new_fanins.contains(&g) {
                            new_fanins.push(g);
                        }
                    }
                    merged = true;
                } else if !new_fanins.contains(&f) {
                    new_fanins.push(f);
                }
            }
            if merged {
                c.rewire(id, kind, new_fanins).expect("inlining fanins is acyclic");
                changed += 1;
            }
        }
        total += changed;
        if changed == 0 {
            return total;
        }
    }
}

/// Structural hashing: merges gates with identical (kind, sorted fanins).
/// Consumers of a duplicate are redirected to the representative.
///
/// Returns the number of duplicate gates eliminated.
pub fn strash(c: &mut Circuit) -> usize {
    let order = c.topo_order().expect("combinational circuit");
    let mut repr: Vec<NodeId> = (0..c.len()).map(NodeId::from_index).collect();
    let mut table: HashMap<(GateKind, Vec<NodeId>), NodeId> = HashMap::new();
    let mut changed = 0;
    let mut duplicates: Vec<(NodeId, NodeId)> = Vec::new();
    for id in order {
        let node = c.node(id);
        if !node.kind().is_gate() {
            continue;
        }
        // Buffers never become class representatives (a duplicate demoted
        // to Buf on an earlier pass must not re-register as a duplicate).
        if node.kind() == GateKind::Buf {
            repr[id.index()] = repr[node.fanins()[0].index()];
            continue;
        }
        let mut fanins: Vec<NodeId> = node.fanins().iter().map(|f| repr[f.index()]).collect();
        if node.kind().is_symmetric() {
            fanins.sort_unstable();
        }
        let key = (node.kind(), fanins.clone());
        match table.get(&key) {
            Some(&existing) => {
                repr[id.index()] = existing;
                duplicates.push((id, existing));
            }
            None => {
                table.insert(key, id);
                if fanins != node.fanins() {
                    c.rewire(id, node.kind(), fanins).expect("representatives are acyclic");
                    changed += 1;
                }
            }
        }
    }
    if !duplicates.is_empty() {
        for i in 0..c.len() {
            let id = NodeId::from_index(i);
            let node = c.node(id);
            if !node.kind().is_gate() {
                continue;
            }
            let fanins: Vec<NodeId> = node.fanins().iter().map(|f| repr[f.index()]).collect();
            if fanins != node.fanins() {
                let kind = node.kind();
                c.rewire(id, kind, fanins).expect("representatives are acyclic");
                changed += 1;
            }
        }
        // Demote each duplicate to a buffer of its representative so the
        // pass is idempotent (re-running finds nothing new to merge).
        for (dup, existing) in duplicates {
            let node = c.node(dup);
            if node.kind() == GateKind::Buf && node.fanins() == [existing] {
                continue;
            }
            c.rewire(dup, GateKind::Buf, vec![existing])
                .expect("a duplicate never lies in its representative's fanin cone");
            changed += 1;
        }
    }
    changed
}

/// Runs [`propagate_constants`], [`collapse_buffers`], [`strash`] and
/// [`Circuit::sweep`] to a fixpoint. Does **not** merge chains (chain
/// merging changes gate granularity; callers opt in explicitly).
///
/// Returns the total number of changes.
pub fn normalize(c: &mut Circuit) -> usize {
    let mut total = 0;
    loop {
        let mut changed = 0;
        changed += propagate_constants(c);
        changed += collapse_buffers(c);
        changed += strash(c);
        total += changed;
        if changed == 0 {
            c.sweep();
            return total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Circuit;

    fn outputs_for_all(c: &Circuit) -> Vec<Vec<bool>> {
        let n = c.inputs().len();
        (0..1u32 << n)
            .map(|m| {
                let assignment: Vec<bool> = (0..n).map(|i| m >> (n - 1 - i) & 1 == 1).collect();
                c.eval_assignment(&assignment)
            })
            .collect()
    }

    #[test]
    fn constants_fold_through_and() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let k1 = c.add_const(true);
        let k0 = c.add_const(false);
        let g1 = c.add_gate(GateKind::And, vec![a, k1]).unwrap(); // = a
        let g2 = c.add_gate(GateKind::Or, vec![g1, k0]).unwrap(); // = a
        c.add_output(g2, "y");
        let before = outputs_for_all(&c);
        propagate_constants(&mut c);
        assert_eq!(outputs_for_all(&c), before);
        assert_eq!(c.node(g1).kind(), GateKind::Buf);
        assert_eq!(c.node(g2).kind(), GateKind::Buf);
    }

    #[test]
    fn forced_output_becomes_constant() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let k0 = c.add_const(false);
        let g = c.add_gate(GateKind::Nand, vec![a, k0]).unwrap();
        c.add_output(g, "y");
        propagate_constants(&mut c);
        assert_eq!(c.node(g).kind(), GateKind::Const1);
    }

    #[test]
    fn xor_constant_and_duplicate_rules() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let k1 = c.add_const(true);
        let g1 = c.add_gate(GateKind::Xor, vec![a, b, k1]).unwrap(); // xnor(a,b)
        let g2 = c.add_gate(GateKind::Xor, vec![a, a, b]).unwrap(); // buf(b)
        c.add_output(g1, "y1");
        c.add_output(g2, "y2");
        let before = outputs_for_all(&c);
        propagate_constants(&mut c);
        assert_eq!(outputs_for_all(&c), before);
        assert_eq!(c.node(g1).kind(), GateKind::Xnor);
        assert_eq!(c.node(g2).kind(), GateKind::Buf);
    }

    #[test]
    fn duplicate_fanins_dedupe() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.add_gate(GateKind::And, vec![a, a]).unwrap();
        c.add_output(g, "y");
        propagate_constants(&mut c);
        assert_eq!(c.node(g).kind(), GateKind::Buf);
    }

    #[test]
    fn buffers_collapse() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let buf = c.add_gate(GateKind::Buf, vec![a]).unwrap();
        let n1 = c.add_gate(GateKind::Not, vec![b]).unwrap();
        let n2 = c.add_gate(GateKind::Not, vec![n1]).unwrap();
        let g = c.add_gate(GateKind::And, vec![buf, n2]).unwrap();
        c.add_output(g, "y");
        let before = outputs_for_all(&c);
        collapse_buffers(&mut c);
        assert_eq!(outputs_for_all(&c), before);
        assert_eq!(c.node(g).fanins(), &[a, b]);
    }

    #[test]
    fn chains_merge_into_wide_gate() {
        // AND(AND(a,b),c) with single fanout merges to AND(a,b,c).
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("d");
        let inner = c.add_gate(GateKind::And, vec![a, b]).unwrap();
        let outer = c.add_gate(GateKind::And, vec![inner, d]).unwrap();
        c.add_output(outer, "y");
        let before = outputs_for_all(&c);
        assert_eq!(merge_chains(&mut c), 1);
        assert_eq!(outputs_for_all(&c), before);
        assert_eq!(c.node(outer).fanins().len(), 3);
    }

    #[test]
    fn chains_do_not_merge_shared_gates() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("d");
        let inner = c.add_gate(GateKind::And, vec![a, b]).unwrap();
        let outer = c.add_gate(GateKind::And, vec![inner, d]).unwrap();
        c.add_output(outer, "y");
        c.add_output(inner, "z"); // inner is shared with an output
        assert_eq!(merge_chains(&mut c), 0);
    }

    #[test]
    fn strash_merges_duplicates() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate(GateKind::And, vec![a, b]).unwrap();
        let g2 = c.add_gate(GateKind::And, vec![b, a]).unwrap(); // same, permuted
        let o = c.add_gate(GateKind::Or, vec![g1, g2]).unwrap();
        c.add_output(o, "y");
        let before = outputs_for_all(&c);
        let changed = strash(&mut c);
        assert!(changed >= 2, "redirect + demotion at minimum, got {changed}");
        assert_eq!(outputs_for_all(&c), before);
        // One of the two ANDs became the representative, the other a buffer
        // of it, and the OR reads the representative twice.
        let (repr, dup) = if c.node(g1).kind() == GateKind::And { (g1, g2) } else { (g2, g1) };
        assert_eq!(c.node(dup).kind(), GateKind::Buf);
        assert_eq!(c.node(dup).fanins(), &[repr]);
        assert_eq!(c.node(o).fanins(), &[repr, repr]);
        // Idempotent: a second run changes nothing (the fixpoint property
        // `normalize` relies on).
        assert_eq!(strash(&mut c), 0);
    }

    #[test]
    fn normalize_reaches_fixpoint_and_sweeps() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let k1 = c.add_const(true);
        let g1 = c.add_gate(GateKind::And, vec![a, k1]).unwrap();
        let g2 = c.add_gate(GateKind::And, vec![g1, b]).unwrap();
        let g3 = c.add_gate(GateKind::And, vec![a, b]).unwrap();
        let o = c.add_gate(GateKind::Or, vec![g2, g3]).unwrap();
        c.add_output(o, "y");
        let before = outputs_for_all(&c);
        normalize(&mut c);
        assert_eq!(outputs_for_all(&c), before);
        // g2 and g3 become the same AND(a,b); OR dedupes to Buf; everything
        // else swept. Final: 2 inputs + AND + OR-as-buf.
        assert!(c.len() <= 4, "got {} nodes", c.len());
        c.validate().unwrap();
    }
}
