//! Circuit size and shape statistics, including the paper's equivalent
//! 2-input gate count.

use crate::{Circuit, GateKind, PathCount};
use std::fmt;

/// A summary of circuit size and testability-relevant shape metrics.
///
/// Produced by [`Circuit::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of live nodes (reachable from an output), including inputs.
    pub live_nodes: usize,
    /// Number of live logic gates (including buffers and inverters).
    pub gates: usize,
    /// Equivalent 2-input gate count (the paper's area metric).
    pub two_input_gates: u64,
    /// Total number of input-to-output paths (Procedure 1), with an
    /// explicit saturation flag for counts that overflowed `u128`.
    pub paths: PathCount,
    /// Number of gates on the longest input-to-output path (buffers and
    /// inverters included).
    pub depth: u32,
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "in={} out={} gates={} eq2={} paths={} depth={}",
            self.inputs, self.outputs, self.gates, self.two_input_gates, self.paths, self.depth
        )
    }
}

/// Equivalent 2-input gate cost of one gate kind with `arity` fanins.
///
/// A `k`-input AND/OR/NAND/NOR/XOR/XNOR counts as `k - 1` two-input gates
/// (the paper, Section 5). Inverters and buffers count 0; the paper does not
/// specify their cost, and the classical equivalent-gate convention charges
/// only for the 2-input gate tree. The convention is applied uniformly to
/// both the original and the modified circuits, so every comparison the
/// paper makes is unaffected by this choice (see DESIGN.md).
pub fn two_input_cost(kind: GateKind, arity: usize) -> u64 {
    match kind {
        GateKind::And
        | GateKind::Or
        | GateKind::Nand
        | GateKind::Nor
        | GateKind::Xor
        | GateKind::Xnor => arity.saturating_sub(1) as u64,
        _ => 0,
    }
}

/// Arena memory footprint of a [`Circuit`], as reported by `sft stats`.
///
/// Produced by [`Circuit::memory_stats`]. All byte counts measure the flat
/// arena columns, not allocator overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryStats {
    /// Bytes in the per-node columns (kind, fanin span, name id).
    pub node_bytes: usize,
    /// Bytes in the pooled fanin buffer, including garbage spans left by
    /// committed rewires (reclaimed by [`Circuit::sweep`]).
    pub pool_bytes: usize,
    /// Bytes in the interned name table (string contents plus per-string
    /// bookkeeping columns).
    pub name_bytes: usize,
    /// Number of nodes.
    pub nodes: usize,
    /// Live fanin references (entries the current spans actually address).
    pub pool_live: usize,
    /// Total fanin pool entries, including garbage.
    pub pool_len: usize,
    /// Number of distinct interned name strings.
    pub interned_names: usize,
}

impl MemoryStats {
    /// Total arena bytes across all three regions.
    pub fn total_bytes(&self) -> usize {
        self.node_bytes + self.pool_bytes + self.name_bytes
    }

    /// Average arena bytes per node (all regions / node count).
    pub fn bytes_per_node(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.total_bytes() as f64 / self.nodes as f64
        }
    }

    /// Fraction of the fanin pool addressed by live spans (1.0 when flat;
    /// drops as committed rewires strand garbage until the next sweep).
    pub fn pool_occupancy(&self) -> f64 {
        if self.pool_len == 0 {
            1.0
        } else {
            self.pool_live as f64 / self.pool_len as f64
        }
    }
}

impl fmt::Display for MemoryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "arena={}B ({:.1}B/node) node-cols={}B pool={}B ({:.0}% live) names={}B ({} interned)",
            self.total_bytes(),
            self.bytes_per_node(),
            self.node_bytes,
            self.pool_bytes,
            self.pool_occupancy() * 100.0,
            self.name_bytes,
            self.interned_names,
        )
    }
}

impl Circuit {
    /// Arena memory footprint; see [`MemoryStats`].
    pub fn memory_stats(&self) -> MemoryStats {
        let (node_bytes, pool_bytes, name_bytes) = self.memory_footprint();
        MemoryStats {
            node_bytes,
            pool_bytes,
            name_bytes,
            nodes: self.len(),
            pool_live: self.fanin_count(),
            pool_len: self.fanin_pool_len(),
            interned_names: self.interned_names(),
        }
    }

    /// Equivalent 2-input gate count over live logic (the paper's area
    /// metric; see [`two_input_cost`]).
    pub fn two_input_gate_count(&self) -> u64 {
        let live = self.live_mask();
        self.iter()
            .filter(|(id, _)| live[id.index()])
            .map(|(_, n)| two_input_cost(n.kind(), n.fanins().len()))
            .sum()
    }

    /// Number of gates (including buffers/inverters) on the longest
    /// input-to-output path.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic.
    pub fn depth(&self) -> u32 {
        let levels = self.levels().expect("combinational circuit");
        self.outputs().iter().map(|o| levels[o.index()]).max().unwrap_or(0)
    }

    /// Computes the full [`CircuitStats`] summary.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic.
    pub fn stats(&self) -> CircuitStats {
        let live = self.live_mask();
        let live_nodes = live.iter().filter(|&&b| b).count();
        let gates = self.iter().filter(|(id, n)| live[id.index()] && n.kind().is_gate()).count();
        CircuitStats {
            inputs: self.inputs().len(),
            outputs: self.outputs().len(),
            live_nodes,
            gates,
            two_input_gates: self.two_input_gate_count(),
            paths: self.path_count_exact(),
            depth: self.depth(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Circuit;

    #[test]
    fn eq2_counts_wide_gates() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("d");
        let n = c.add_gate(GateKind::Not, vec![a]).unwrap();
        let g = c.add_gate(GateKind::And, vec![n, b, d]).unwrap();
        c.add_output(g, "y");
        // 3-input AND = 2 eq-2 gates; NOT = 0.
        assert_eq!(c.two_input_gate_count(), 2);
    }

    #[test]
    fn eq2_ignores_dead_logic() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, vec![a, b]).unwrap();
        let _dead = c.add_gate(GateKind::Or, vec![a, b]).unwrap();
        c.add_output(g, "y");
        assert_eq!(c.two_input_gate_count(), 1);
    }

    #[test]
    fn stats_summary() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let n = c.add_gate(GateKind::Not, vec![a]).unwrap();
        let g = c.add_gate(GateKind::And, vec![n, b]).unwrap();
        c.add_output(g, "y");
        let s = c.stats();
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.gates, 2);
        assert_eq!(s.two_input_gates, 1);
        assert_eq!(s.paths, PathCount::exact(2));
        assert_eq!(s.depth, 2);
        assert!(s.to_string().contains("eq2=1"));
    }

    #[test]
    fn memory_stats_track_pool_garbage() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, vec![a, b]).unwrap();
        c.add_output(g, "y");
        let fresh = c.memory_stats();
        assert_eq!(fresh.nodes, 3);
        assert_eq!(fresh.pool_live, 2);
        assert_eq!(fresh.pool_len, 2);
        assert!((fresh.pool_occupancy() - 1.0).abs() < 1e-9);
        assert!(fresh.bytes_per_node() > 0.0);
        // Named nodes "a", "b" intern two strings; the output name lives in
        // the output table, not the node name column.
        assert_eq!(fresh.interned_names, 2);

        // A committed rewire strands the old span in the pool.
        c.rewire(g, GateKind::Or, vec![b, a]).unwrap();
        let frag = c.memory_stats();
        assert_eq!(frag.pool_live, 2);
        assert_eq!(frag.pool_len, 4);
        assert!(frag.pool_occupancy() < 1.0);

        // Sweep reclaims it.
        c.sweep();
        let swept = c.memory_stats();
        assert_eq!(swept.pool_len, swept.pool_live);
        let line = swept.to_string();
        assert!(line.contains("B/node"), "{line}");
        assert!(line.contains("100% live"), "{line}");
    }

    #[test]
    fn cost_table() {
        assert_eq!(two_input_cost(GateKind::And, 5), 4);
        assert_eq!(two_input_cost(GateKind::Nor, 2), 1);
        assert_eq!(two_input_cost(GateKind::Not, 1), 0);
        assert_eq!(two_input_cost(GateKind::Buf, 1), 0);
        assert_eq!(two_input_cost(GateKind::Const1, 0), 0);
    }
}
