use crate::NodeId;
use std::fmt;

/// Errors produced by netlist construction, editing and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate was given the wrong number of fanins for its kind.
    Arity {
        /// The gate kind's display name.
        kind: &'static str,
        /// The number of fanins actually supplied.
        got: usize,
    },
    /// A referenced node id does not exist in the circuit.
    NodeOutOfRange(NodeId),
    /// An edit would have created a combinational cycle through this node.
    Cycle(NodeId),
    /// The circuit contains a combinational cycle (detected during ordering).
    Cyclic,
    /// A node that had to be a gate (e.g. a rewiring target) is a primary
    /// input.
    NotAGate(NodeId),
    /// `.bench` parse failure with 1-based line number.
    Parse {
        /// 1-based line number of the offending `.bench` line.
        line: usize,
        /// What went wrong on that line.
        message: String,
    },
    /// A cone truth-table extraction failed (too many inputs, or the target
    /// depends on lines outside the given input cut).
    Cone(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::Arity { kind, got } => {
                write!(f, "invalid fanin count {got} for gate kind {kind}")
            }
            NetlistError::NodeOutOfRange(id) => write!(f, "node id {id} out of range"),
            NetlistError::Cycle(id) => {
                write!(f, "edit would create a combinational cycle through node {id}")
            }
            NetlistError::Cyclic => write!(f, "circuit contains a combinational cycle"),
            NetlistError::NotAGate(id) => write!(f, "node {id} is not a gate"),
            NetlistError::Parse { line, message } => {
                write!(f, "bench parse error at line {line}: {message}")
            }
            NetlistError::Cone(message) => write!(f, "cone extraction failed: {message}"),
        }
    }
}

impl std::error::Error for NetlistError {}
