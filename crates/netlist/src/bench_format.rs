//! ISCAS-style `.bench` netlist format.
//!
//! The format is the one used by the ISCAS-85/89 benchmark distributions:
//!
//! ```text
//! # comment
//! INPUT(a)
//! INPUT(b)
//! OUTPUT(y)
//! n1 = NAND(a, b)
//! y  = NOT(n1)
//! ```
//!
//! Supported gate names: `AND`, `OR`, `NAND`, `NOR`, `XOR`, `XNOR`, `NOT`,
//! `BUF`/`BUFF`, and the extensions `CONST0`/`CONST1` (written without
//! arguments). Sequential elements (`DFF`) are rejected: this workspace
//! models fully-scanned circuits, i.e. the combinational core only — exactly
//! the form the paper evaluates ("irredundant, fully-scanned ISCAS89").
//!
//! # Examples
//!
//! ```
//! use sft_netlist::bench_format::{parse, write};
//!
//! let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
//! let c = parse(src, "tiny")?;
//! assert_eq!(c.inputs().len(), 2);
//! let round_trip = parse(&write(&c), "tiny2")?;
//! assert_eq!(round_trip.outputs().len(), 1);
//! # Ok::<(), sft_netlist::NetlistError>(())
//! ```

use crate::{Circuit, GateKind, NetlistError, NodeId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Upper bound on the fanins of one parsed gate. Real netlists stay far
/// below it; an absurd count is either a corrupt file or a parser bomb,
/// and a daemon-side parser must reject it with a typed error instead of
/// attempting to build (and later walk) a pathological node.
pub const MAX_PARSE_FANINS: usize = 1024;

fn gate_kind_from_name(name: &str) -> Option<GateKind> {
    Some(match name.to_ascii_uppercase().as_str() {
        "AND" => GateKind::And,
        "OR" => GateKind::Or,
        "NAND" => GateKind::Nand,
        "NOR" => GateKind::Nor,
        "XOR" => GateKind::Xor,
        "XNOR" => GateKind::Xnor,
        "NOT" | "INV" => GateKind::Not,
        "BUF" | "BUFF" => GateKind::Buf,
        "CONST0" | "GND" => GateKind::Const0,
        "CONST1" | "VDD" => GateKind::Const1,
        _ => return None,
    })
}

/// Parses `.bench` text into a [`Circuit`] named `name`.
///
/// Signals may be used before they are defined (two-pass resolution).
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] with a 1-based line number for syntax
/// errors, unknown gate types, undefined signals, duplicate definitions, and
/// sequential elements.
pub fn parse(text: &str, name: impl Into<String>) -> Result<Circuit, NetlistError> {
    enum Item {
        Input(String),
        Output(String),
        Gate { target: String, kind: GateKind, args: Vec<String> },
    }
    let err = |line: usize, message: String| NetlistError::Parse { line, message };
    let mut items: Vec<(usize, Item)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("INPUT(").or_else(|| line.strip_prefix("input(")) {
            let sig = rest
                .strip_suffix(')')
                .ok_or_else(|| err(lineno, "missing ')' after INPUT".into()))?;
            items.push((lineno, Item::Input(sig.trim().to_string())));
        } else if let Some(rest) =
            line.strip_prefix("OUTPUT(").or_else(|| line.strip_prefix("output("))
        {
            let sig = rest
                .strip_suffix(')')
                .ok_or_else(|| err(lineno, "missing ')' after OUTPUT".into()))?;
            items.push((lineno, Item::Output(sig.trim().to_string())));
        } else if let Some((target, expr)) = line.split_once('=') {
            let target = target.trim().to_string();
            let expr = expr.trim();
            let (func, args_str) = match expr.split_once('(') {
                Some((f, rest)) => {
                    let inner = rest
                        .strip_suffix(')')
                        .ok_or_else(|| err(lineno, "missing ')' in gate expression".into()))?;
                    (f.trim(), inner)
                }
                None => (expr, ""),
            };
            if func.eq_ignore_ascii_case("DFF") {
                return Err(err(
                    lineno,
                    "sequential element DFF not supported; extract the combinational core".into(),
                ));
            }
            let kind = gate_kind_from_name(func)
                .ok_or_else(|| err(lineno, format!("unknown gate type {func:?}")))?;
            let args: Vec<String> = args_str
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
            if args.len() > MAX_PARSE_FANINS {
                return Err(err(
                    lineno,
                    format!("gate has {} fanins (limit {MAX_PARSE_FANINS})", args.len()),
                ));
            }
            items.push((lineno, Item::Gate { target, kind, args }));
        } else {
            return Err(err(lineno, format!("unrecognized line {line:?}")));
        }
    }

    // Every input/gate item becomes exactly one node: size the arena and
    // the name map once instead of re-growing them through a 1M-gate file.
    let node_items = items.iter().filter(|(_, i)| !matches!(i, Item::Output(_))).count();
    let mut c = Circuit::with_capacity(name, node_items);
    let mut by_name: HashMap<String, NodeId> = HashMap::with_capacity(node_items);
    // Pass 1: declare inputs and placeholder gates.
    for (lineno, item) in &items {
        match item {
            Item::Input(sig) => {
                if by_name.contains_key(sig) {
                    return Err(err(*lineno, format!("duplicate definition of {sig:?}")));
                }
                let id = c.add_input(sig.clone());
                by_name.insert(sig.clone(), id);
            }
            Item::Gate { target, kind, .. } => {
                if by_name.contains_key(target) {
                    return Err(err(*lineno, format!("duplicate definition of {target:?}")));
                }
                // Placeholder constant; rewired in pass 2.
                let id = c.add_const(*kind == GateKind::Const1);
                c.set_node_name(id, target.clone());
                by_name.insert(target.clone(), id);
            }
            Item::Output(_) => {}
        }
    }
    // Pass 2: connect gates and outputs.
    for (lineno, item) in &items {
        match item {
            Item::Gate { target, kind, args } => {
                if matches!(kind, GateKind::Const0 | GateKind::Const1) {
                    if !args.is_empty() {
                        return Err(err(*lineno, "constants take no arguments".into()));
                    }
                    continue;
                }
                // Pass 1 declared every gate target; `.get` (not indexing)
                // keeps even an internal inconsistency a typed error rather
                // than a panic on a hostile input path.
                let &target_id = by_name
                    .get(target)
                    .ok_or_else(|| err(*lineno, format!("undeclared gate target {target:?}")))?;
                let mut fanins = Vec::with_capacity(args.len());
                for a in args {
                    let &id = by_name
                        .get(a)
                        .ok_or_else(|| err(*lineno, format!("undefined signal {a:?}")))?;
                    fanins.push(id);
                }
                c.rewire(target_id, *kind, fanins).map_err(|e| match e {
                    NetlistError::Cycle(_) => {
                        err(*lineno, format!("combinational cycle through {target:?}"))
                    }
                    NetlistError::Arity { kind, got } => {
                        err(*lineno, format!("gate {kind} cannot take {got} inputs"))
                    }
                    other => other,
                })?;
            }
            Item::Output(sig) => {
                let &id = by_name
                    .get(sig)
                    .ok_or_else(|| err(*lineno, format!("undefined output signal {sig:?}")))?;
                c.add_output(id, sig.clone());
            }
            Item::Input(_) => {}
        }
    }
    Ok(c)
}

/// Serializes a circuit to `.bench` text. Unnamed nodes get synthetic
/// `n<id>` names; the output is parseable by [`parse`].
///
/// Gate definitions are emitted in a canonical order — by logic level, ties
/// broken by signal name — which depends only on the named structure, not
/// on node-id assignment. Re-parsing and re-writing therefore reproduces
/// the text bit-for-bit (after one stabilizing round trip when output
/// aliases have to be materialized as `BUF` gates).
pub fn write(c: &Circuit) -> String {
    // One name per node, materialized once: the old per-use closure
    // allocated a fresh `String` for every fanin reference, which dominated
    // serialization time (and memory churn) on 100K+-gate circuits.
    let names: Vec<String> = c
        .iter()
        .map(|(id, node)| match node.name() {
            Some(n) => n.to_string(),
            None => format!("n{}", id.index()),
        })
        .collect();
    let name_of = |id: NodeId| -> &str { &names[id.index()] };
    // Estimate: every node appears once as a target and once per fanin
    // reference, plus fixed per-line syntax.
    let name_bytes: usize = names.iter().map(String::len).sum();
    let fanin_refs: usize = c.iter().map(|(_, n)| n.fanins().len()).sum();
    let avg_name = name_bytes / c.len().max(1) + 1;
    let mut out = String::with_capacity(
        name_bytes + fanin_refs * (avg_name + 2) + 16 * (c.len() + c.outputs().len() + 1),
    );
    let _ = writeln!(out, "# {}", c.name());
    for &i in c.inputs() {
        let _ = writeln!(out, "INPUT({})", name_of(i));
    }
    for (slot, &o) in c.outputs().iter().enumerate() {
        let label = c.output_name(slot).unwrap_or_else(|| name_of(o));
        let _ = writeln!(out, "OUTPUT({label})");
    }
    // Gates in canonical (level, name) order — a topological order, since
    // every fanin sits at a strictly smaller level. Output aliases are
    // handled via BUF when the output name differs from the driver's name.
    let level = c.levels().expect("combinational circuit");
    let mut order: Vec<NodeId> = (0..c.len()).map(NodeId::from_index).collect();
    order.sort_by(|&a, &b| (level[a.index()], name_of(a)).cmp(&(level[b.index()], name_of(b))));
    for id in order {
        let node = c.node(id);
        match node.kind() {
            GateKind::Input => {}
            GateKind::Const0 => {
                let _ = writeln!(out, "{} = CONST0", name_of(id));
            }
            GateKind::Const1 => {
                let _ = writeln!(out, "{} = CONST1", name_of(id));
            }
            kind => {
                let _ = write!(out, "{} = {}(", name_of(id), kind.name());
                for (i, &f) in node.fanins().iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(name_of(f));
                }
                out.push_str(")\n");
            }
        }
    }
    for (slot, &o) in c.outputs().iter().enumerate() {
        if let Some(label) = c.output_name(slot) {
            if label != name_of(o) {
                let _ = writeln!(out, "{label} = BUF({})", name_of(o));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17: &str = "\
# c17 (ISCAS-85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn parse_c17() {
        let c = parse(C17, "c17").unwrap();
        assert_eq!(c.inputs().len(), 5);
        assert_eq!(c.outputs().len(), 2);
        assert_eq!(c.two_input_gate_count(), 6);
        c.validate().unwrap();
        // Known vector: all inputs 0 -> NAND outputs ... compute one case.
        // inputs (1,2,3,6,7) = (0,0,0,0,0): 10=1, 11=1, 16=1, 19=1, 22=0, 23=0.
        assert_eq!(c.eval_assignment(&[false; 5]), vec![false, false]);
    }

    #[test]
    fn c17_path_count() {
        let c = parse(C17, "c17").unwrap();
        // Paths: 22: via 10 (1,3) + via 16 (2, 11{3,6}) = 2 + 3 = 5;
        // 23: via 16 (3) + via 19 (11{3,6},7) = 3 + 3 = 6. Total 11.
        assert_eq!(c.path_count(), 11);
    }

    #[test]
    fn round_trip_preserves_function() {
        let c = parse(C17, "c17").unwrap();
        let text = write(&c);
        let c2 = parse(&text, "c17rt").unwrap();
        assert_eq!(c.inputs().len(), c2.inputs().len());
        for m in 0..32u32 {
            let a: Vec<bool> = (0..5).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(c.eval_assignment(&a), c2.eval_assignment(&a));
        }
    }

    #[test]
    fn forward_references_allowed() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(m)\nm = BUF(a)\n";
        let c = parse(src, "fwd").unwrap();
        assert_eq!(c.eval_assignment(&[true]), vec![false]);
    }

    #[test]
    fn constants_supported() {
        let src = "INPUT(a)\nOUTPUT(y)\nk = CONST1\ny = AND(a, k)\n";
        let c = parse(src, "k").unwrap();
        assert_eq!(c.eval_assignment(&[true]), vec![true]);
        assert_eq!(c.eval_assignment(&[false]), vec![false]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n";
        match parse(bad, "bad") {
            Err(NetlistError::Parse { line, message }) => {
                assert_eq!(line, 3);
                assert!(message.contains("FROB"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn dff_rejected() {
        let bad = "INPUT(a)\nOUTPUT(y)\ny = DFF(a)\n";
        assert!(matches!(parse(bad, "bad"), Err(NetlistError::Parse { line: 3, .. })));
    }

    #[test]
    fn undefined_signal_rejected() {
        let bad = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n";
        assert!(matches!(parse(bad, "bad"), Err(NetlistError::Parse { line: 3, .. })));
    }

    #[test]
    fn duplicate_definition_rejected() {
        let bad = "INPUT(a)\nINPUT(a)\n";
        assert!(matches!(parse(bad, "bad"), Err(NetlistError::Parse { line: 2, .. })));
    }

    #[test]
    fn cycle_rejected() {
        let bad = "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = BUF(y)\n";
        assert!(parse(bad, "bad").is_err());
    }

    // --- Adversarial fixtures: a daemon parses untrusted files, so every
    // malformed shape below must surface as a typed `NetlistError::Parse`
    // (never a panic, never an index-out-of-bounds).

    #[test]
    fn truncated_mid_expression_rejected() {
        // File cut off mid-write: open paren, no close, then EOF.
        let bad = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a,";
        assert!(matches!(parse(bad, "trunc"), Err(NetlistError::Parse { line: 4, .. })));
    }

    #[test]
    fn truncated_input_declaration_rejected() {
        let bad = "INPUT(a";
        assert!(matches!(parse(bad, "trunc"), Err(NetlistError::Parse { line: 1, .. })));
        let bad = "INPUT(a)\nOUTPUT(y";
        assert!(matches!(parse(bad, "trunc"), Err(NetlistError::Parse { line: 2, .. })));
    }

    #[test]
    fn absurd_fanin_count_rejected() {
        let mut src = String::from("INPUT(a)\nOUTPUT(y)\n");
        let args = vec!["a"; MAX_PARSE_FANINS + 1].join(", ");
        let _ = writeln!(src, "y = AND({args})");
        match parse(&src, "bomb") {
            Err(NetlistError::Parse { line: 3, message }) => {
                assert!(message.contains("fanins"), "unexpected message {message:?}");
            }
            other => panic!("expected fanin-cap parse error, got {other:?}"),
        }
        // Exactly at the cap is still accepted (the limit is a bomb guard,
        // not a functional restriction).
        let mut ok = String::from("INPUT(a)\nOUTPUT(y)\n");
        let args = vec!["a"; MAX_PARSE_FANINS].join(", ");
        let _ = writeln!(ok, "y = AND({args})");
        parse(&ok, "wide").unwrap();
    }

    #[test]
    fn binary_garbage_rejected_not_panicking() {
        let garbage = "\u{0}\u{1}\u{2}=\u{3}(\u{4}\n\nOUTPUT(\n= AND(x)\n";
        assert!(parse(garbage, "garbage").is_err());
    }

    #[test]
    fn self_loop_rejected() {
        let bad = "INPUT(a)\nOUTPUT(y)\ny = AND(a, y)\n";
        assert!(matches!(parse(bad, "selfloop"), Err(NetlistError::Parse { line: 3, .. })));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let src = "\n# hello\nINPUT(a) # trailing\nOUTPUT(a)\n";
        let c = parse(src, "c").unwrap();
        assert_eq!(c.inputs().len(), 1);
        assert_eq!(c.outputs().len(), 1);
    }
}
