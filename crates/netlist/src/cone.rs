//! Cone extraction: the function a line implements in terms of a cut of
//! input lines, as a truth table.

use crate::{Circuit, GateKind, NetlistError, NodeId};
use sft_truth::{TruthTable, MAX_INPUTS};
use std::collections::HashMap;

impl Circuit {
    /// The set of gate nodes strictly between the cut `inputs` and `root`
    /// (including `root`, excluding the cut lines themselves).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cone`] if some path from `root` reaches a
    /// primary input or constant without crossing the cut — i.e. the cut
    /// does not dominate the cone.
    pub fn cone_gates(&self, root: NodeId, inputs: &[NodeId]) -> Result<Vec<NodeId>, NetlistError> {
        let mut gates = Vec::new();
        let mut seen = vec![false; self.len()];
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            if inputs.contains(&n) {
                continue;
            }
            if std::mem::replace(&mut seen[n.index()], true) {
                continue;
            }
            let node = self.node(n);
            if !node.kind().is_gate() {
                return Err(NetlistError::Cone(format!(
                    "line {n} ({}) reached without crossing the cut",
                    node.kind()
                )));
            }
            gates.push(n);
            stack.extend_from_slice(node.fanins());
        }
        Ok(gates)
    }

    /// The Boolean function of line `root` in terms of the ordered cut
    /// `inputs` (input 0 is the most significant minterm bit, matching the
    /// paper's `x_1`-is-MSB convention).
    ///
    /// Constants *are* allowed inside the cone; they simply contribute their
    /// value. The cut lines may be any lines of the circuit (gate outputs or
    /// primary inputs).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cone`] if `inputs` has more than
    /// [`MAX_INPUTS`] lines, contains duplicates, or does not cut every path
    /// from `root` to the primary inputs.
    ///
    /// # Examples
    ///
    /// ```
    /// use sft_netlist::{Circuit, GateKind};
    ///
    /// let mut c = Circuit::new("t");
    /// let a = c.add_input("a");
    /// let b = c.add_input("b");
    /// let g = c.add_gate(GateKind::Nand, vec![a, b])?;
    /// let f = c.cone_function(g, &[a, b])?;
    /// assert_eq!(f.on_set().collect::<Vec<_>>(), vec![0, 1, 2]);
    /// # Ok::<(), sft_netlist::NetlistError>(())
    /// ```
    pub fn cone_function(
        &self,
        root: NodeId,
        inputs: &[NodeId],
    ) -> Result<TruthTable, NetlistError> {
        if inputs.len() > MAX_INPUTS {
            return Err(NetlistError::Cone(format!(
                "cut has {} lines, more than the supported {MAX_INPUTS}",
                inputs.len()
            )));
        }
        for (i, a) in inputs.iter().enumerate() {
            if inputs[..i].contains(a) {
                return Err(NetlistError::Cone(format!("duplicate cut line {a}")));
            }
        }
        // Evaluate the cone over all 2^k cut assignments using word-parallel
        // simulation: with k <= 7 all 128 minterms fit in two u64 words.
        // The walk is cone-local (memoized DFS), so the cost is proportional
        // to the cone size, not the circuit size — this is the hot path of
        // the resynthesis candidate search.
        let k = inputs.len();
        let minterms = 1u64 << k;
        let words = minterms.div_ceil(64) as usize;
        let mut values: HashMap<NodeId, [u64; 2]> = HashMap::new();
        // Cut line i (MSB-first) gets the pattern where bit m of word w is
        // bit (n-1-i) of minterm (w*64+m).
        for (i, &line) in inputs.iter().enumerate() {
            let mut v = [0u64; 2];
            for (w, word) in v.iter_mut().enumerate().take(words) {
                for m in 0..64u64 {
                    let minterm = w as u64 * 64 + m;
                    if minterm < minterms && minterm >> (k - 1 - i) & 1 == 1 {
                        *word |= 1 << m;
                    }
                }
            }
            values.insert(line, v);
        }
        // Iterative post-order DFS from the root.
        let mut stack: Vec<(NodeId, bool)> = vec![(root, false)];
        let mut buf: Vec<u64> = Vec::new();
        while let Some((n, expanded)) = stack.pop() {
            if values.contains_key(&n) {
                continue;
            }
            let node = self.node(n);
            match node.kind() {
                GateKind::Const0 => {
                    values.insert(n, [0, 0]);
                }
                GateKind::Const1 => {
                    values.insert(n, [u64::MAX, u64::MAX]);
                }
                GateKind::Input => {
                    return Err(NetlistError::Cone(format!(
                        "primary input {n} reached without crossing the cut"
                    )));
                }
                kind => {
                    if expanded {
                        let mut out = [0u64; 2];
                        for (w, o) in out.iter_mut().enumerate().take(words) {
                            buf.clear();
                            buf.extend(node.fanins().iter().map(|f| values[f][w]));
                            *o = kind.try_eval_words(&buf).ok_or_else(|| {
                                NetlistError::Cone(format!("gate {n} ({kind}) is malformed"))
                            })?;
                        }
                        values.insert(n, out);
                    } else {
                        stack.push((n, true));
                        for &f in node.fanins() {
                            if !values.contains_key(&f) {
                                stack.push((f, false));
                            }
                        }
                    }
                }
            }
        }
        let root_vals = values[&root];
        Ok(TruthTable::from_fn(k, |m| root_vals[(m / 64) as usize] >> (m % 64) & 1 == 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cone_through_internal_gate() {
        // root = OR(AND(a,b), c); cut {AND, c} gives a 2-input OR table.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let x = c.add_input("c");
        let g1 = c.add_gate(GateKind::And, vec![a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Or, vec![g1, x]).unwrap();
        c.add_output(g2, "y");
        let f = c.cone_function(g2, &[g1, x]).unwrap();
        assert_eq!(f.on_set().collect::<Vec<_>>(), vec![1, 2, 3]);
        // Full cut gives the 3-input function.
        let f3 = c.cone_function(g2, &[a, b, x]).unwrap();
        assert_eq!(f3.on_count(), 5); // ab + c has 5 on-minterms of 8
    }

    #[test]
    fn cut_must_dominate() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, vec![a, b]).unwrap();
        c.add_output(g, "y");
        assert!(c.cone_function(g, &[a]).is_err());
    }

    #[test]
    fn duplicate_cut_lines_rejected() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.add_gate(GateKind::Not, vec![a]).unwrap();
        c.add_output(g, "y");
        assert!(c.cone_function(g, &[a, a]).is_err());
    }

    #[test]
    fn constants_inside_cone() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let k1 = c.add_const(true);
        let g = c.add_gate(GateKind::And, vec![a, k1]).unwrap();
        c.add_output(g, "y");
        let f = c.cone_function(g, &[a]).unwrap();
        assert_eq!(f.on_set().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn seven_input_cone() {
        let mut c = Circuit::new("t");
        let ins: Vec<_> = (0..7).map(|i| c.add_input(format!("i{i}"))).collect();
        let g = c.add_gate(GateKind::And, ins.clone()).unwrap();
        c.add_output(g, "y");
        let f = c.cone_function(g, &ins).unwrap();
        assert_eq!(f.on_set().collect::<Vec<_>>(), vec![127]);
    }

    #[test]
    fn root_in_cut_is_identity() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.add_gate(GateKind::Not, vec![a]).unwrap();
        c.add_output(g, "y");
        let f = c.cone_function(g, &[g]).unwrap();
        assert_eq!(f, sft_truth::TruthTable::variable(1, 0));
    }

    #[test]
    fn msb_convention_matches_paper() {
        // f(x1,x2) with cut order [p, q]: p is x1 (MSB).
        let mut c = Circuit::new("t");
        let p = c.add_input("p");
        let q = c.add_input("q");
        let g = c.add_gate(GateKind::And, vec![p, q]).unwrap();
        let np = c.add_gate(GateKind::Not, vec![p]).unwrap();
        let h = c.add_gate(GateKind::Or, vec![np, g]).unwrap();
        c.add_output(h, "y");
        // h = !p + pq; minterms (p,q): 00->1, 01->1, 10->0, 11->1.
        let f = c.cone_function(h, &[p, q]).unwrap();
        assert_eq!(f.on_set().collect::<Vec<_>>(), vec![0, 1, 3]);
        // Reversed cut order swaps the roles.
        let f_rev = c.cone_function(h, &[q, p]).unwrap();
        assert_eq!(f_rev.on_set().collect::<Vec<_>>(), vec![0, 2, 3]);
    }
}
