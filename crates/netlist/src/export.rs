//! Structural Verilog and Graphviz DOT export.
//!
//! Both writers are for downstream consumption (synthesis handoff,
//! visualization); neither is read back by this workspace.

use crate::{Circuit, GateKind, NodeId};
use std::fmt::Write as _;

fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphanumeric() || ch == '_';
        if i == 0 && ch.is_ascii_digit() {
            out.push('n');
        }
        out.push(if ok { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('n');
    }
    out
}

fn signal_name(c: &Circuit, id: NodeId) -> String {
    match c.node(id).name() {
        Some(n) => sanitize(n),
        None => format!("n{}", id.index()),
    }
}

/// Serializes the circuit as a structural Verilog module using
/// `and/or/nand/nor/xor/xnor/not/buf` primitives (wide gates emit wide
/// primitive instances, which Verilog permits).
///
/// # Panics
///
/// Panics if the circuit is cyclic.
pub fn write_verilog(c: &Circuit) -> String {
    let mut out = String::new();
    let module = sanitize(c.name());
    let inputs: Vec<String> = c.inputs().iter().map(|&i| signal_name(c, i)).collect();
    let outputs: Vec<String> = (0..c.outputs().len())
        .map(|slot| sanitize(c.output_name(slot).unwrap_or(&format!("out{slot}"))))
        .collect();
    let _ = writeln!(out, "module {module} (");
    let mut ports: Vec<String> = inputs.iter().map(|p| format!("    input  wire {p}")).collect();
    ports.extend(outputs.iter().map(|p| format!("    output wire {p}")));
    let _ = writeln!(out, "{}", ports.join(",\n"));
    let _ = writeln!(out, ");");

    let order = c.topo_order().expect("combinational circuit");
    for id in order {
        let node = c.node(id);
        if !node.kind().is_gate() && !matches!(node.kind(), GateKind::Const0 | GateKind::Const1) {
            continue;
        }
        let name = signal_name(c, id);
        let _ = writeln!(out, "    wire {name};");
        match node.kind() {
            GateKind::Const0 => {
                let _ = writeln!(out, "    assign {name} = 1'b0;");
            }
            GateKind::Const1 => {
                let _ = writeln!(out, "    assign {name} = 1'b1;");
            }
            kind => {
                let prim = match kind {
                    GateKind::And => "and",
                    GateKind::Or => "or",
                    GateKind::Nand => "nand",
                    GateKind::Nor => "nor",
                    GateKind::Xor => "xor",
                    GateKind::Xnor => "xnor",
                    GateKind::Not => "not",
                    GateKind::Buf => "buf",
                    _ => unreachable!("inputs/constants handled above"),
                };
                let args: Vec<String> = node.fanins().iter().map(|&f| signal_name(c, f)).collect();
                let _ = writeln!(out, "    {prim} g{} ({name}, {});", id.index(), args.join(", "));
            }
        }
    }
    for (slot, &o) in c.outputs().iter().enumerate() {
        let _ = writeln!(out, "    assign {} = {};", outputs[slot], signal_name(c, o));
    }
    let _ = writeln!(out, "endmodule");
    out
}

/// Serializes the circuit as a Graphviz DOT digraph (inputs as boxes,
/// gates labelled with their kind, outputs as double circles).
///
/// # Panics
///
/// Panics if the circuit is cyclic.
pub fn write_dot(c: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sanitize(c.name()));
    let _ = writeln!(out, "    rankdir=LR;");
    let output_set: std::collections::HashSet<NodeId> = c.outputs().iter().copied().collect();
    let live = c.live_mask();
    for (id, node) in c.iter() {
        if !live[id.index()] {
            continue;
        }
        let name = signal_name(c, id);
        let (shape, label) = match node.kind() {
            GateKind::Input => ("box", name.clone()),
            kind if output_set.contains(&id) => ("doublecircle", format!("{kind}\\n{name}")),
            kind => ("ellipse", format!("{kind}\\n{name}")),
        };
        let _ = writeln!(out, "    n{} [shape={shape}, label=\"{label}\"];", id.index());
        for &f in node.fanins() {
            let _ = writeln!(out, "    n{} -> n{};", f.index(), id.index());
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_format::parse;

    const SRC: &str = "\
INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\n\
t1 = NAND(a, b)\ny = NOT(t1)\nk = CONST1\nz = XOR(t1, k)\n";

    #[test]
    fn verilog_structure() {
        let c = parse(SRC, "demo").unwrap();
        let v = write_verilog(&c);
        assert!(v.starts_with("module demo ("));
        assert!(v.contains("input  wire a"));
        assert!(v.contains("output wire y"));
        assert!(v.contains("nand g"));
        assert!(v.contains("assign k = 1'b1;"));
        assert!(v.trim_end().ends_with("endmodule"));
        // One primitive instance per gate.
        let gates = v.matches("    nand ").count()
            + v.matches("    not ").count()
            + v.matches("    xor ").count();
        assert_eq!(gates, 3);
    }

    #[test]
    fn verilog_sanitizes_names() {
        let c = parse("INPUT(1)\nOUTPUT(2)\n2 = NOT(1)\n", "1bad-name").unwrap();
        let v = write_verilog(&c);
        assert!(v.contains("module n1bad_name"));
        assert!(v.contains("input  wire n1"));
    }

    #[test]
    fn dot_structure() {
        let c = parse(SRC, "demo").unwrap();
        let d = write_dot(&c);
        assert!(d.starts_with("digraph"));
        assert!(d.contains("shape=box"));
        assert!(d.contains("shape=doublecircle"));
        assert!(d.contains("->"));
        assert!(d.trim_end().ends_with('}'));
        // Edge count = total fanin references of live nodes.
        let edges = d.matches(" -> ").count();
        assert_eq!(edges, 5); // t1(2) + y(1) + z(2)
    }

    #[test]
    fn dot_skips_dead_logic() {
        let c = parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ndead = BUF(a)\n", "d").unwrap();
        let d = write_dot(&c);
        assert!(!d.contains("dead"));
    }
}
