//! Graphviz DOT export.
//!
//! The DOT writer is for visualization only and is never read back.
//! Structural Verilog import/export lives in the `sft-io` crate, whose
//! canonical writer supersedes the one that used to live here.

use crate::{Circuit, GateKind, NodeId};
use std::fmt::Write as _;

fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphanumeric() || ch == '_';
        if i == 0 && ch.is_ascii_digit() {
            out.push('n');
        }
        out.push(if ok { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('n');
    }
    out
}

fn signal_name(c: &Circuit, id: NodeId) -> String {
    match c.node(id).name() {
        Some(n) => sanitize(n),
        None => format!("n{}", id.index()),
    }
}

/// Serializes the circuit as a Graphviz DOT digraph (inputs as boxes,
/// gates labelled with their kind, outputs as double circles).
///
/// # Panics
///
/// Panics if the circuit is cyclic.
pub fn write_dot(c: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sanitize(c.name()));
    let _ = writeln!(out, "    rankdir=LR;");
    let output_set: std::collections::HashSet<NodeId> = c.outputs().iter().copied().collect();
    let live = c.live_mask();
    for (id, node) in c.iter() {
        if !live[id.index()] {
            continue;
        }
        let name = signal_name(c, id);
        let (shape, label) = match node.kind() {
            GateKind::Input => ("box", name.clone()),
            kind if output_set.contains(&id) => ("doublecircle", format!("{kind}\\n{name}")),
            kind => ("ellipse", format!("{kind}\\n{name}")),
        };
        let _ = writeln!(out, "    n{} [shape={shape}, label=\"{label}\"];", id.index());
        for &f in node.fanins() {
            let _ = writeln!(out, "    n{} -> n{};", f.index(), id.index());
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_format::parse;

    const SRC: &str = "\
INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\n\
t1 = NAND(a, b)\ny = NOT(t1)\nk = CONST1\nz = XOR(t1, k)\n";

    #[test]
    fn dot_structure() {
        let c = parse(SRC, "demo").unwrap();
        let d = write_dot(&c);
        assert!(d.starts_with("digraph"));
        assert!(d.contains("shape=box"));
        assert!(d.contains("shape=doublecircle"));
        assert!(d.contains("->"));
        assert!(d.trim_end().ends_with('}'));
        // Edge count = total fanin references of live nodes.
        let edges = d.matches(" -> ").count();
        assert_eq!(edges, 5); // t1(2) + y(1) + z(2)
    }

    #[test]
    fn dot_skips_dead_logic() {
        let c = parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ndead = BUF(a)\n", "d").unwrap();
        let d = write_dot(&c);
        assert!(!d.contains("dead"));
    }
}
