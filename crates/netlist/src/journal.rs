//! Transactional edit journal: rollback in O(#edits), not O(circuit).
//!
//! Every structural mutator of [`Circuit`] records the inverse operation in
//! an internal journal while an edit transaction is open (between
//! [`Circuit::begin_edit`] and [`Circuit::commit`] or
//! [`Circuit::rollback_to`]). Rolling back replays the inverses in reverse
//! order, so reverting a trial edit costs time proportional to the size of
//! the *edit*, not the size of the circuit. This is the substrate for the
//! edit-heavy loops of Procedures 2/3 and the RAMBO baseline, which try
//! thousands of candidate mutations per run and keep only a few.
//!
//! With the flat-arena node storage every inverse is O(1) in size: a
//! rewire's inverse is the node's previous `(kind, span)` pair — the old
//! fanins stay where they are in the pooled buffer (the pool is
//! append-only between sweeps), so nothing is cloned into the journal.
//! Rollback truncates the pool tail as it unwinds (each transactional
//! append sits at the tail by the time its inverse runs), so a rolled-back
//! transaction reclaims every pool byte it appended.
//!
//! Transactions nest: an inner checkpoint can be rolled back while an outer
//! one stays open; journal entries are discarded only when the outermost
//! transaction commits. [`Circuit::sweep`] compacts node ids and the pool
//! and cannot be expressed as a journalable edit, so it panics while a
//! transaction is open.
//!
//! # Examples
//!
//! ```
//! use sft_netlist::{Circuit, GateKind};
//!
//! let mut c = Circuit::new("t");
//! let a = c.add_input("a");
//! let b = c.add_input("b");
//! let g = c.add_gate(GateKind::And, vec![a, b])?;
//! c.add_output(g, "y");
//!
//! let before = c.clone();
//! let cp = c.begin_edit();
//! c.rewire(g, GateKind::Or, vec![a, b])?;
//! let extra = c.add_gate(GateKind::Not, vec![g])?;
//! c.add_output(extra, "z");
//! c.rollback_to(cp);
//! assert_eq!(c, before);
//! # Ok::<(), sft_netlist::NetlistError>(())
//! ```

use crate::circuit::Span;
use crate::{Circuit, GateKind, NodeId};

/// Inverse of a single structural edit, recorded while a transaction is
/// open. Every variant is fixed-size: fanin pre-images are `(offset, len)`
/// spans into the circuit's pooled fanin buffer, not cloned vectors.
#[derive(Debug, Clone)]
pub(crate) enum UndoOp {
    /// Undo `add_input` / `add_const` / `add_gate`: pop the newest node
    /// (and truncate its pool tail).
    PopNode {
        /// Whether the node was also pushed onto the primary-input list.
        was_input: bool,
    },
    /// Undo `add_output`: pop the newest output slot.
    PopOutput,
    /// Undo `rewire`: restore the node's previous kind and fanin span.
    Rewire {
        /// The rewired node.
        id: NodeId,
        /// Its kind before the rewire.
        kind: GateKind,
        /// Its fanin span before the rewire (the storage is still in the
        /// pool — it is only reclaimed by `sweep`).
        span: Span,
    },
    /// Undo `set_node_name`: restore the previous interned name id.
    NodeName {
        /// The renamed node.
        id: NodeId,
        /// Its interned name id before the rename (`NO_NAME` sentinel when
        /// it was unnamed).
        name_id: u32,
    },
    /// Undo `set_name`: restore the previous circuit name.
    CircuitName {
        /// The circuit name before the rename.
        name: String,
    },
}

/// The journal itself: a stack of inverse operations plus the current
/// transaction nesting depth. Lives inside [`Circuit`]; empty whenever no
/// transaction is open.
#[derive(Debug, Default)]
pub(crate) struct Journal {
    ops: Vec<UndoOp>,
    depth: usize,
}

impl Journal {
    /// Whether a transaction is open (mutations are being recorded).
    pub(crate) fn recording(&self) -> bool {
        self.depth > 0
    }

    /// Records an inverse operation; a no-op outside a transaction.
    pub(crate) fn record(&mut self, op: UndoOp) {
        if self.depth > 0 {
            self.ops.push(op);
        }
    }
}

/// A position in the edit journal, returned by [`Circuit::begin_edit`].
///
/// Pass it back to [`Circuit::commit`] to keep the edits or to
/// [`Circuit::rollback_to`] to undo them. Checkpoints must be resolved
/// innermost-first; resolving one out of order panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    ops: usize,
    depth: usize,
    /// Arena layout flags at checkpoint time, restored on rollback (the
    /// pool is fully unwound by then, so they are exact again).
    flat: bool,
    topo_ids: bool,
}

impl Circuit {
    /// Opens an edit transaction and returns a checkpoint for it.
    ///
    /// Until the checkpoint is resolved with [`commit`](Self::commit) or
    /// [`rollback_to`](Self::rollback_to), every structural mutation records
    /// its inverse, and [`sweep`](Self::sweep) panics. Transactions nest.
    pub fn begin_edit(&mut self) -> Checkpoint {
        self.journal.depth += 1;
        let (flat, topo_ids) = self.layout_flags();
        Checkpoint { ops: self.journal.ops.len(), depth: self.journal.depth, flat, topo_ids }
    }

    /// Keeps all edits made since `cp` and closes its transaction.
    ///
    /// Journal memory is released when the outermost transaction commits;
    /// an inner commit keeps its entries so an enclosing checkpoint can
    /// still roll them back.
    ///
    /// # Panics
    ///
    /// Panics if `cp` is not the innermost open checkpoint.
    pub fn commit(&mut self, cp: Checkpoint) {
        assert_eq!(cp.depth, self.journal.depth, "commit of a non-innermost checkpoint");
        debug_assert!(cp.ops <= self.journal.ops.len());
        self.journal.depth -= 1;
        if self.journal.depth == 0 {
            self.journal.ops.clear();
        }
    }

    /// Undoes every edit made since `cp` (in reverse order) and closes its
    /// transaction. Cost is O(#edits since `cp`), independent of circuit
    /// size; incremental views are patched back along the way, and every
    /// pool append made inside the transaction is truncated away.
    ///
    /// # Panics
    ///
    /// Panics if `cp` is not the innermost open checkpoint.
    pub fn rollback_to(&mut self, cp: Checkpoint) {
        assert_eq!(cp.depth, self.journal.depth, "rollback of a non-innermost checkpoint");
        while self.journal.ops.len() > cp.ops {
            let op = self.journal.ops.pop().expect("length checked");
            self.undo(op);
        }
        self.journal.depth -= 1;
        // All transactional pool appends are unwound now; the layout flags
        // captured at begin_edit are exact again.
        self.restore_layout(cp.flat, cp.topo_ids);
    }

    /// Whether an edit transaction is currently open.
    pub fn in_transaction(&self) -> bool {
        self.journal.recording()
    }

    /// Number of journal entries recorded since `cp` — the cost, in
    /// inverse operations, of rolling back to it.
    pub fn edits_since(&self, cp: Checkpoint) -> usize {
        self.journal.ops.len().saturating_sub(cp.ops)
    }

    /// The node count the circuit had when `cp` was taken.
    pub fn len_at(&self, cp: Checkpoint) -> usize {
        let added = self.journal.ops[cp.ops..]
            .iter()
            .filter(|op| matches!(op, UndoOp::PopNode { .. }))
            .count();
        self.len() - added
    }

    /// The pre-transaction image (kind and fanins) of every node rewired
    /// since `cp`, as `(id, kind, fanins)` triples. When a node was rewired
    /// several times, the *first* recorded image — i.e. its state at the
    /// checkpoint — wins, so a node rewired away and back reports its
    /// original image and compares equal to its current state. The fanin
    /// slices resolve the journalled spans against the pool, whose
    /// pre-image storage is untouched while the transaction is open.
    pub fn pre_images_since(&self, cp: Checkpoint) -> Vec<(NodeId, GateKind, &[NodeId])> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for op in &self.journal.ops[cp.ops..] {
            if let UndoOp::Rewire { id, kind, span } = op {
                if seen.insert(*id) {
                    out.push((*id, *kind, self.span_slice(*span)));
                }
            }
        }
        out
    }

    /// Applies one inverse operation, patching the incremental views to
    /// match.
    fn undo(&mut self, op: UndoOp) {
        match op {
            UndoOp::PopNode { was_input } => self.undo_pop_node(was_input),
            UndoOp::PopOutput => {
                let o = self.outputs.pop().expect("journalled output exists");
                self.output_names.pop();
                if let Some(v) = &mut self.views {
                    v.on_pop_output(o);
                }
                self.touch();
            }
            UndoOp::Rewire { id, kind, span } => self.undo_rewire(id, kind, span),
            UndoOp::NodeName { id, name_id } => self.undo_node_name(id, name_id),
            UndoOp::CircuitName { name } => {
                self.name = name;
                self.touch();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Circuit, GateKind};

    fn sample() -> Circuit {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, vec![a, b]).unwrap();
        c.add_output(g, "y");
        c
    }

    #[test]
    fn rollback_restores_every_mutation_kind() {
        let mut c = sample();
        let before = c.clone();
        let cp = c.begin_edit();
        let a = c.inputs()[0];
        let g = c.outputs()[0];
        c.rewire(g, GateKind::Or, vec![a, c.inputs()[1]]).unwrap();
        let k = c.add_const(true);
        let n = c.add_gate(GateKind::Not, vec![k]).unwrap();
        c.add_named_gate(GateKind::Buf, vec![n], "buffered").unwrap();
        c.add_input("late");
        c.add_output(n, "z");
        c.set_node_name(g, "renamed");
        c.set_name("renamed_circuit");
        assert!(c.edits_since(cp) > 0);
        c.rollback_to(cp);
        assert_eq!(c, before);
        assert!(!c.in_transaction());
    }

    #[test]
    fn commit_keeps_edits_and_clears_journal() {
        let mut c = sample();
        let cp = c.begin_edit();
        let a = c.inputs()[0];
        let extra = c.add_gate(GateKind::Not, vec![a]).unwrap();
        c.add_output(extra, "z");
        c.commit(cp);
        assert!(!c.in_transaction());
        assert_eq!(c.outputs().len(), 2);
        c.validate().unwrap();
    }

    #[test]
    fn nested_inner_rollback_preserves_outer_edits() {
        let mut c = sample();
        let a = c.inputs()[0];
        let outer = c.begin_edit();
        let kept = c.add_gate(GateKind::Not, vec![a]).unwrap();
        let mid = c.clone();
        let inner = c.begin_edit();
        c.add_gate(GateKind::Buf, vec![kept]).unwrap();
        c.rollback_to(inner);
        assert_eq!(c, mid);
        c.rollback_to(outer);
        assert_eq!(c, sample());
    }

    #[test]
    fn nested_inner_commit_can_still_be_rolled_back_by_outer() {
        let mut c = sample();
        let a = c.inputs()[0];
        let outer = c.begin_edit();
        let inner = c.begin_edit();
        c.add_gate(GateKind::Not, vec![a]).unwrap();
        c.commit(inner);
        c.rollback_to(outer);
        assert_eq!(c, sample());
    }

    #[test]
    fn len_at_and_pre_images_reconstruct_checkpoint_state() {
        let mut c = sample();
        let a = c.inputs()[0];
        let b = c.inputs()[1];
        let g = c.outputs()[0];
        let cp = c.begin_edit();
        assert_eq!(c.len_at(cp), 3);
        c.rewire(g, GateKind::Or, vec![a, b]).unwrap();
        c.rewire(g, GateKind::And, vec![a, b]).unwrap(); // back to original
        c.add_gate(GateKind::Not, vec![a]).unwrap();
        assert_eq!(c.len_at(cp), 3);
        let pre = c.pre_images_since(cp);
        assert_eq!(pre.len(), 1);
        let (id, kind, fanins) = pre[0];
        assert_eq!(id, g);
        assert_eq!(kind, GateKind::And); // first image wins: the checkpoint state
        assert_eq!(fanins, &[a, b]);
        c.rollback_to(cp);
    }

    #[test]
    #[should_panic(expected = "sweep")]
    fn sweep_panics_inside_transaction() {
        let mut c = sample();
        let _cp = c.begin_edit();
        c.sweep();
    }

    #[test]
    #[should_panic(expected = "non-innermost")]
    fn out_of_order_resolution_panics() {
        let mut c = sample();
        let outer = c.begin_edit();
        let _inner = c.begin_edit();
        c.rollback_to(outer);
    }

    #[test]
    fn clone_does_not_carry_open_transactions() {
        let mut c = sample();
        let _cp = c.begin_edit();
        let a = c.inputs()[0];
        c.add_gate(GateKind::Not, vec![a]).unwrap();
        let snap = c.clone();
        assert!(!snap.in_transaction());
    }
}
