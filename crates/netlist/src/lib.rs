//! Gate-level combinational circuit model for the `sft` workspace.
//!
//! This crate provides the structural substrate every other crate builds on:
//!
//! - [`Circuit`] — a mutable gate-level netlist (DAG) with named primary
//!   inputs and outputs and multi-input gates;
//! - Procedure 1 of Pomeranz & Reddy (DAC 1995): [`Circuit::path_count`] and
//!   [`Circuit::path_labels`] count the paths from the primary inputs to
//!   every line;
//! - equivalent 2-input gate counting ([`Circuit::two_input_gate_count`]),
//!   the paper's area metric;
//! - ISCAS-style `.bench` parsing and writing ([`bench_format`]);
//! - structural transforms ([`simplify`]): constant propagation, buffer
//!   collapsing, duplicate-fanin cleanup, same-kind chain merging,
//!   structural hashing and dead-logic sweeping;
//! - cone extraction to truth tables ([`Circuit::cone_function`]), the bridge
//!   used by comparison-function identification;
//! - a transactional edit journal ([`Circuit::begin_edit`]) with O(#edits)
//!   rollback, and incrementally maintained derived views
//!   ([`Circuit::enable_views`]): fanout adjacency, levels, Procedure 1
//!   path labels and immediate dominators over the fanout graph
//!   ([`Circuit::immediate_dominators`]) patched per edit instead of
//!   rebuilt per call.
//!
//! # Examples
//!
//! ```
//! use sft_netlist::{Circuit, GateKind};
//!
//! let mut c = Circuit::new("demo");
//! let a = c.add_input("a");
//! let b = c.add_input("b");
//! let g = c.add_gate(GateKind::And, vec![a, b])?;
//! c.add_output(g, "y");
//!
//! assert_eq!(c.path_count(), 2);
//! assert_eq!(c.two_input_gate_count(), 1);
//! assert_eq!(c.eval_assignment(&[true, true]), vec![true]);
//! # Ok::<(), sft_netlist::NetlistError>(())
//! ```

#![warn(missing_docs)]

pub mod bench_format;
mod circuit;
mod cone;
pub mod dominators;
mod error;
pub mod export;
mod gate;
mod journal;
mod paths;
pub mod simplify;
mod stats;
mod synth;
mod views;

pub use circuit::{Circuit, Node, NodeId, NodeMap};
pub use error::NetlistError;
pub use gate::GateKind;
pub use journal::Checkpoint;
pub use paths::PathCount;
pub use stats::{two_input_cost, CircuitStats, MemoryStats};
pub use views::CircuitViews;
