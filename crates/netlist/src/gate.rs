use std::fmt;

/// The kind of a circuit node.
///
/// Multi-input kinds ([`And`](GateKind::And), [`Or`](GateKind::Or),
/// [`Nand`](GateKind::Nand), [`Nor`](GateKind::Nor), [`Xor`](GateKind::Xor),
/// [`Xnor`](GateKind::Xnor)) accept one or more fanins; `Xor`/`Xnor` with
/// more than two fanins compute (complemented) parity. [`Not`](GateKind::Not)
/// and [`Buf`](GateKind::Buf) take exactly one fanin; constants and
/// [`Input`](GateKind::Input) take none.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum GateKind {
    /// A primary input.
    Input,
    /// Constant logic 0.
    Const0,
    /// Constant logic 1.
    Const1,
    /// A non-inverting buffer.
    Buf,
    /// An inverter.
    Not,
    /// Logical AND of all fanins.
    And,
    /// Logical OR of all fanins.
    Or,
    /// Complemented AND.
    Nand,
    /// Complemented OR.
    Nor,
    /// Parity (XOR) of all fanins.
    Xor,
    /// Complemented parity.
    Xnor,
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl GateKind {
    /// The canonical upper-case name used by the `.bench` format.
    pub fn name(self) -> &'static str {
        match self {
            GateKind::Input => "INPUT",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Or => "OR",
            GateKind::Nand => "NAND",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
        }
    }

    /// Whether the kind is a logic gate (not an input or constant).
    pub fn is_gate(self) -> bool {
        !matches!(self, GateKind::Input | GateKind::Const0 | GateKind::Const1)
    }

    /// Whether a node of this kind accepts `n` fanins.
    pub fn accepts_arity(self, n: usize) -> bool {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => n == 0,
            GateKind::Buf | GateKind::Not => n == 1,
            _ => n >= 1,
        }
    }

    /// The controlling input value of the gate, if it has one.
    ///
    /// A controlling value on any input determines the output regardless of
    /// the other inputs (0 for AND/NAND, 1 for OR/NOR). Parity gates,
    /// buffers, inverters, inputs and constants have none.
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// Whether the gate inverts (output = complement of the uninverted
    /// AND/OR/parity of the inputs). For `Not` this is `true`.
    pub fn inverts(self) -> bool {
        matches!(self, GateKind::Not | GateKind::Nand | GateKind::Nor | GateKind::Xnor)
    }

    /// The same gate with the output inversion toggled, if such a kind
    /// exists (e.g. `And` ↔ `Nand`). Constants also pair up; `Input` has no
    /// complement kind.
    pub fn complemented(self) -> Option<GateKind> {
        Some(match self {
            GateKind::And => GateKind::Nand,
            GateKind::Nand => GateKind::And,
            GateKind::Or => GateKind::Nor,
            GateKind::Nor => GateKind::Or,
            GateKind::Xor => GateKind::Xnor,
            GateKind::Xnor => GateKind::Xor,
            GateKind::Buf => GateKind::Not,
            GateKind::Not => GateKind::Buf,
            GateKind::Const0 => GateKind::Const1,
            GateKind::Const1 => GateKind::Const0,
            GateKind::Input => return None,
        })
    }

    /// Evaluates the gate on boolean fanin values, or `None` if the kind has
    /// no gate function ([`GateKind::Input`]) or the arity is invalid for
    /// the kind (see [`accepts_arity`](Self::accepts_arity)).
    ///
    /// This is the total form of [`eval`](Self::eval): it never panics, so
    /// traversals over possibly-malformed circuits can degrade gracefully.
    pub fn try_eval(self, fanins: &[bool]) -> Option<bool> {
        if !self.accepts_arity(fanins.len()) {
            return None;
        }
        Some(match self {
            GateKind::Input => return None,
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Buf => fanins[0],
            GateKind::Not => !fanins[0],
            GateKind::And => fanins.iter().all(|&b| b),
            GateKind::Nand => !fanins.iter().all(|&b| b),
            GateKind::Or => fanins.iter().any(|&b| b),
            GateKind::Nor => !fanins.iter().any(|&b| b),
            GateKind::Xor => fanins.iter().filter(|&&b| b).count() % 2 == 1,
            GateKind::Xnor => fanins.iter().filter(|&&b| b).count() % 2 == 0,
        })
    }

    /// Evaluates the gate on boolean fanin values.
    ///
    /// Checked accessor over [`try_eval`](Self::try_eval) for traversals of
    /// validated circuits, where arity was enforced at construction and
    /// primary inputs are handled before gate evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the arity is invalid for the kind (see
    /// [`accepts_arity`](Self::accepts_arity)) or if called on
    /// [`GateKind::Input`].
    pub fn eval(self, fanins: &[bool]) -> bool {
        self.try_eval(fanins)
            .unwrap_or_else(|| panic!("no gate function for {self} with {} fanins", fanins.len()))
    }

    /// Evaluates the gate over 64 parallel patterns packed into `u64` words,
    /// or `None` under the same conditions as [`try_eval`](Self::try_eval).
    pub fn try_eval_words(self, fanins: &[u64]) -> Option<u64> {
        if !self.accepts_arity(fanins.len()) {
            return None;
        }
        Some(match self {
            GateKind::Input => return None,
            GateKind::Const0 => 0,
            GateKind::Const1 => u64::MAX,
            GateKind::Buf => fanins[0],
            GateKind::Not => !fanins[0],
            GateKind::And => fanins.iter().fold(u64::MAX, |a, &b| a & b),
            GateKind::Nand => !fanins.iter().fold(u64::MAX, |a, &b| a & b),
            GateKind::Or => fanins.iter().fold(0, |a, &b| a | b),
            GateKind::Nor => !fanins.iter().fold(0, |a, &b| a | b),
            GateKind::Xor => fanins.iter().fold(0, |a, &b| a ^ b),
            GateKind::Xnor => !fanins.iter().fold(0, |a, &b| a ^ b),
        })
    }

    /// Evaluates the gate over 64 parallel patterns packed into `u64` words.
    ///
    /// Checked accessor over [`try_eval_words`](Self::try_eval_words); see
    /// [`eval`](Self::eval) for the intended usage contract.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`eval`](Self::eval).
    pub fn eval_words(self, fanins: &[u64]) -> u64 {
        self.try_eval_words(fanins)
            .unwrap_or_else(|| panic!("no gate function for {self} with {} fanins", fanins.len()))
    }

    /// Whether the fanin order is irrelevant (all supported gates are
    /// symmetric; buffers and inverters trivially so).
    pub fn is_symmetric(self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [GateKind; 11] = [
        GateKind::Input,
        GateKind::Const0,
        GateKind::Const1,
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];

    #[test]
    fn eval_matches_eval_words_on_all_kinds() {
        for kind in ALL.into_iter().filter(|k| k.is_gate()) {
            for n in 1..=3usize {
                if !kind.accepts_arity(n) {
                    continue;
                }
                for m in 0..1u32 << n {
                    let bools: Vec<bool> = (0..n).map(|i| m >> i & 1 == 1).collect();
                    let words: Vec<u64> =
                        bools.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
                    let scalar = kind.eval(&bools);
                    let word = kind.eval_words(&words);
                    assert_eq!(word, if scalar { u64::MAX } else { 0 }, "{kind} on {bools:?}");
                }
            }
        }
    }

    #[test]
    fn complemented_is_involutive() {
        for kind in ALL {
            if let Some(c) = kind.complemented() {
                assert_eq!(c.complemented(), Some(kind));
                if kind.is_gate() && kind.accepts_arity(2) {
                    for m in 0..4u32 {
                        let bools = [m & 1 == 1, m & 2 == 2];
                        assert_eq!(kind.eval(&bools), !c.eval(&bools), "{kind} vs {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
        // A controlling value really controls.
        for kind in [GateKind::And, GateKind::Nand, GateKind::Or, GateKind::Nor] {
            let c = kind.controlling_value().unwrap();
            for other in [false, true] {
                let out = kind.eval(&[c, other]);
                assert_eq!(out, kind.eval(&[c, !other]), "{kind}");
            }
        }
    }

    #[test]
    fn wide_parity() {
        assert!(GateKind::Xor.eval(&[true, true, true]));
        assert!(!GateKind::Xor.eval(&[true, true, false, false]));
        assert!(GateKind::Xnor.eval(&[true, true]));
    }

    #[test]
    fn try_eval_is_total() {
        // Inputs have no gate function; bad arities are rejected, not
        // panicked on — for every kind and a sweep of arities.
        assert_eq!(GateKind::Input.try_eval(&[]), None);
        assert_eq!(GateKind::Input.try_eval_words(&[]), None);
        for kind in ALL {
            for n in 0..=4usize {
                let bools = vec![true; n];
                let words = vec![u64::MAX; n];
                let ok = kind.accepts_arity(n) && kind != GateKind::Input;
                assert_eq!(kind.try_eval(&bools).is_some(), ok, "{kind}/{n}");
                assert_eq!(kind.try_eval_words(&words).is_some(), ok, "{kind}/{n}");
            }
        }
    }

    #[test]
    fn try_eval_agrees_with_eval() {
        for kind in ALL.into_iter().filter(|k| k.is_gate()) {
            for n in 1..=3usize {
                if !kind.accepts_arity(n) {
                    continue;
                }
                for m in 0..1u32 << n {
                    let bools: Vec<bool> = (0..n).map(|i| m >> i & 1 == 1).collect();
                    assert_eq!(kind.try_eval(&bools), Some(kind.eval(&bools)));
                }
            }
        }
    }

    #[test]
    fn arity_rules() {
        assert!(GateKind::Input.accepts_arity(0));
        assert!(!GateKind::Input.accepts_arity(1));
        assert!(GateKind::Not.accepts_arity(1));
        assert!(!GateKind::Not.accepts_arity(2));
        assert!(GateKind::And.accepts_arity(5));
        assert!(!GateKind::And.accepts_arity(0));
    }
}
