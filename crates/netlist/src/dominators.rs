//! Immediate dominators over the fanout graph (toward the outputs).
//!
//! A node `d` *dominates* a node `n` when every path from `n` to any
//! primary-output slot passes through `d`. Domination is defined over the
//! fanout adjacency graph extended with a virtual sink that every
//! PO-referenced node feeds, so "reaches an output" and "reaches the sink"
//! coincide. The *immediate* dominator `idom(n)` is the first dominator
//! every such path hits — the unique gate through which **all** fault
//! effects at `n` must funnel, which is what lets fault simulation gate a
//! stem's observability at one downstream point instead of propagating to
//! the outputs (see `sft-sim`'s critical-path-tracing engine).
//!
//! [`Circuit::immediate_dominators`] rebuilds the whole table in one
//! reverse-topological Cooper–Harvey–Kennedy pass; the maintained
//! equivalent lives in [`CircuitViews`](crate::CircuitViews) and is patched
//! per edit (and per journal rollback) from dirty seeds, exactly like the
//! level/path-label views.

use crate::{Circuit, NodeId};

/// Sentinel index for the virtual sink (the common observation point all
/// primary-output slots feed).
pub const SINK: u32 = u32::MAX;
/// Sentinel index for nodes with no path to any output: nothing dominates
/// them because no observation path exists at all.
pub const UNREACHABLE: u32 = u32::MAX - 1;

/// Walks two dominator-tree fingers up to their nearest common ancestor.
/// `key` must order every node strictly before its immediate dominator
/// (any topological key works; the sink compares greatest).
pub fn intersect(
    mut a: u32,
    mut b: u32,
    idom: &[u32],
    key: &mut impl FnMut(u32) -> (u32, u32),
) -> u32 {
    while a != b {
        // The sink is the dominator-tree root and compares greatest.
        if b == SINK || (a != SINK && key(a) < key(b)) {
            a = idom[a as usize];
        } else {
            b = idom[b as usize];
        }
    }
    a
}

/// Recomputes `idom[n]` from its successors' current immediate dominators.
/// Successors are the distinct consumer gates plus the virtual sink when
/// the node is referenced by a primary-output slot. Unreachable successors
/// contribute nothing: paths through them never reach an output.
pub fn recompute_idom(
    successors: impl Iterator<Item = u32>,
    drives_output: bool,
    idom: &[u32],
    key: &mut impl FnMut(u32) -> (u32, u32),
) -> u32 {
    let mut new = if drives_output { SINK } else { UNREACHABLE };
    for s in successors {
        if idom[s as usize] == UNREACHABLE {
            continue;
        }
        new = if new == UNREACHABLE { s } else { intersect(new, s, idom, key) };
    }
    new
}

impl Circuit {
    /// The immediate dominator of every node over the fanout graph:
    /// `Some(d)` when all paths from the node to any primary output pass
    /// through gate `d`, `None` when no proper gate dominator exists —
    /// either the node's paths diverge all the way to the outputs (the
    /// virtual sink is its only dominator) or the node reaches no output
    /// at all.
    ///
    /// One full-rebuild reverse-topological pass; the incrementally
    /// maintained equivalent is
    /// [`CircuitViews::idom`](crate::CircuitViews::idom).
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic.
    ///
    /// # Examples
    ///
    /// ```
    /// use sft_netlist::{Circuit, GateKind};
    ///
    /// let mut c = Circuit::new("reconv");
    /// let a = c.add_input("a");
    /// let b = c.add_input("b");
    /// let g1 = c.add_gate(GateKind::And, vec![a, b])?;
    /// let g2 = c.add_gate(GateKind::Or, vec![a, b])?;
    /// let y = c.add_gate(GateKind::Xor, vec![g1, g2])?;
    /// c.add_output(y, "y");
    ///
    /// // Both of a's paths reconverge at y: y is a's immediate dominator.
    /// let idom = c.immediate_dominators();
    /// assert_eq!(idom[a.index()], Some(y));
    /// // y drives the output directly: no proper dominator.
    /// assert_eq!(idom[y.index()], None);
    /// # Ok::<(), sft_netlist::NetlistError>(())
    /// ```
    pub fn immediate_dominators(&self) -> Vec<Option<NodeId>> {
        let n = self.len();
        let order = self.topo_order().expect("dominators require an acyclic circuit");
        let mut pos = vec![0u32; n];
        for (p, &id) in order.iter().enumerate() {
            pos[id.index()] = p as u32;
        }
        // Distinct consumer gates per node (sorted ascending, deduplicated).
        let mut fanouts: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (id, node) in self.iter() {
            for f in node.fanins() {
                fanouts[f.index()].push(id.index() as u32);
            }
        }
        for list in &mut fanouts {
            list.sort_unstable();
            list.dedup();
        }
        let mut po = vec![false; n];
        for &o in self.outputs() {
            po[o.index()] = true;
        }

        let mut idom = vec![UNREACHABLE; n];
        let mut key = |x: u32| (pos[x as usize], 0);
        for &id in order.iter().rev() {
            let i = id.index();
            idom[i] = recompute_idom(fanouts[i].iter().copied(), po[i], &idom, &mut key);
        }
        idom.iter()
            .map(|&d| if d == SINK || d == UNREACHABLE { None } else { Some(NodeId(d)) })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    #[test]
    fn chain_dominators() {
        // a -> g1 -> g2 -> y: each node's idom is its single consumer.
        let mut c = Circuit::new("chain");
        let a = c.add_input("a");
        let g1 = c.add_gate(GateKind::Not, vec![a]).unwrap();
        let g2 = c.add_gate(GateKind::Buf, vec![g1]).unwrap();
        c.add_output(g2, "y");
        let idom = c.immediate_dominators();
        assert_eq!(idom[a.index()], Some(g1));
        assert_eq!(idom[g1.index()], Some(g2));
        assert_eq!(idom[g2.index()], None);
    }

    #[test]
    fn divergent_paths_have_no_proper_dominator() {
        // a feeds two separate outputs: only the sink dominates a.
        let mut c = Circuit::new("div");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate(GateKind::And, vec![a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Or, vec![a, b]).unwrap();
        c.add_output(g1, "y");
        c.add_output(g2, "z");
        let idom = c.immediate_dominators();
        assert_eq!(idom[a.index()], None);
        assert_eq!(idom[b.index()], None);
    }

    #[test]
    fn dead_node_is_unreachable() {
        let mut c = Circuit::new("dead");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate(GateKind::And, vec![a, b]).unwrap();
        let dead = c.add_gate(GateKind::Or, vec![a, b]).unwrap();
        c.add_output(g1, "y");
        let idom = c.immediate_dominators();
        assert_eq!(idom[dead.index()], None);
        // a still reaches the output through g1 only... and through dead?
        // dead has no consumers, so a's only observation path is g1.
        assert_eq!(idom[a.index()], Some(g1));
    }

    #[test]
    fn po_ref_on_interior_node_caps_the_dominator() {
        // a -> g1 -> g2 -> y, but g1 also drives an output slot: a's
        // effects still funnel through g1, while g1 itself observes
        // directly at its own output (no proper dominator).
        let mut c = Circuit::new("tap");
        let a = c.add_input("a");
        let g1 = c.add_gate(GateKind::Not, vec![a]).unwrap();
        let g2 = c.add_gate(GateKind::Buf, vec![g1]).unwrap();
        c.add_output(g1, "t");
        c.add_output(g2, "y");
        let idom = c.immediate_dominators();
        assert_eq!(idom[a.index()], Some(g1));
        assert_eq!(idom[g1.index()], None);
    }
}
