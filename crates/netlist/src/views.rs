//! Incrementally maintained derived views of a [`Circuit`].
//!
//! [`Circuit::fanout_table`], [`Circuit::fanout_counts`],
//! [`Circuit::levels`] and [`Circuit::path_labels`] all rebuild their answer
//! from scratch — O(circuit) per call. The edit-heavy loops (Procedures 2/3,
//! RAMBO, redundancy removal) consult exactly these quantities after every
//! trial edit, so [`CircuitViews`] keeps them *maintained*: enabled once via
//! [`Circuit::enable_views`], the views are patched by every structural
//! mutation (and patched back by journal rollback) instead of rebuilt.
//!
//! Two freshness classes:
//!
//! - **Eager** — the fanout adjacency and primary-output reference counts
//!   are exact after every mutation. Each per-node consumer list is kept
//!   sorted by `(consumer, pin)`, which is byte-identical to the order
//!   [`Circuit::fanout_table`] produces, so code switching from the rebuilt
//!   table to the view observes the *same* iteration order (several engines
//!   make order-sensitive decisions downstream).
//! - **Lazy** — levels, path labels (Procedure 1's `N_p`) and immediate
//!   dominators over the fanout graph are only guaranteed fresh after
//!   [`Circuit::refresh_views`], which recomputes the affected closure of
//!   all edits since the last refresh in one batched topological pass:
//!   levels/labels reflow the *downstream* closure (they depend on fanins),
//!   dominators reflow the *upstream* fanin-cone closure of every node
//!   whose consumer set changed (a node's dominator depends only on the
//!   subgraph reachable from it). The engines read these once per pass,
//!   not per edit, so batching avoids an O(depth) reflow on every rewire.
//!
//! Views are deliberately patched only from `&mut Circuit` mutators — never
//! concurrently. Scoring workers share the circuit (and its views)
//! immutably; see DESIGN.md "Parallelism & determinism".

use crate::dominators::{self, SINK, UNREACHABLE};
use crate::paths::PathCount;
use crate::{Circuit, GateKind, NodeId};

/// Maintained fanout/level/path-label views of a [`Circuit`]; obtained via
/// [`Circuit::views`] after [`Circuit::enable_views`].
///
/// # Examples
///
/// ```
/// use sft_netlist::{Circuit, GateKind};
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let b = c.add_input("b");
/// let g = c.add_gate(GateKind::And, vec![a, b])?;
/// c.add_output(g, "y");
/// c.enable_views();
///
/// let v = c.views().unwrap();
/// assert_eq!(v.fanout(a), &[(g, 0)]);
/// assert_eq!(v.fanout_count(g), 1); // the primary-output reference
/// assert!(v.drives_output(g));
/// assert_eq!(v.level(g), 1);
/// assert_eq!(v.path_labels(), c.path_labels());
/// # Ok::<(), sft_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct CircuitViews {
    /// Per-node consumer lists, each sorted by `(consumer, pin)` — the exact
    /// order a [`Circuit::fanout_table`] rebuild produces. Primary-output
    /// references are *not* included (matching `fanout_table`).
    fanout: Vec<Vec<(NodeId, usize)>>,
    /// Number of primary-output slots referencing each node.
    po_refs: Vec<u32>,
    /// Logic level of each node (lazy; fresh after `refresh`).
    level: Vec<u32>,
    /// Procedure 1 path label of each node (lazy; fresh after `refresh`).
    label: Vec<PathCount>,
    /// Immediate dominator of each node over the fanout graph, with the
    /// sentinels of [`crate::dominators`] (lazy; fresh after `refresh`).
    idom: Vec<u32>,
    /// Seed queue of nodes whose lazy values may be stale.
    dirty: Vec<u32>,
    /// Dedup mask for `dirty`.
    dirty_flag: Vec<bool>,
    /// Seed queue of nodes whose *successor set* changed, i.e. whose
    /// upstream fanin cone may hold stale dominators.
    dom_seed: Vec<u32>,
    /// Dedup mask for `dom_seed`.
    dom_seed_flag: Vec<bool>,
}

impl CircuitViews {
    /// Builds the views from scratch.
    pub(crate) fn build(c: &Circuit) -> Self {
        let n = c.len();
        let mut v = CircuitViews {
            fanout: vec![Vec::new(); n],
            po_refs: vec![0; n],
            level: vec![0; n],
            label: vec![PathCount::ZERO; n],
            idom: vec![UNREACHABLE; n],
            dirty: Vec::new(),
            dirty_flag: vec![false; n],
            dom_seed: Vec::new(),
            dom_seed_flag: vec![false; n],
        };
        // Iterating nodes in id order pushes each consumer list already
        // sorted by (consumer, pin).
        for (id, node) in c.iter() {
            for (pin, f) in node.fanins().iter().enumerate() {
                v.fanout[f.index()].push((id, pin));
            }
        }
        for &o in c.outputs() {
            v.po_refs[o.index()] += 1;
        }
        let order = c.topo_order().expect("views require an acyclic circuit");
        for &id in &order {
            v.recompute_node(c, id);
        }
        // Dominators flow against the topology; levels are fresh by now, so
        // `(level, id)` is a valid topological key for the intersections.
        for &id in order.iter().rev() {
            v.recompute_dom_node(id.index());
        }
        v
    }

    /// Recomputes the lazy values of one node from its fanins' current
    /// values, mirroring [`Circuit::levels`] and
    /// [`Circuit::path_labels_exact`] exactly.
    fn recompute_node(&mut self, c: &Circuit, id: NodeId) {
        let node = c.node(id);
        self.level[id.index()] = if node.kind().is_gate() {
            1 + node.fanins().iter().map(|f| self.level[f.index()]).max().unwrap_or(0)
        } else {
            0
        };
        self.label[id.index()] = match node.kind() {
            GateKind::Input => PathCount::exact(1),
            GateKind::Const0 | GateKind::Const1 => PathCount::ZERO,
            _ => node
                .fanins()
                .iter()
                .fold(PathCount::ZERO, |acc, f| acc.saturating_add(self.label[f.index()])),
        };
    }

    /// Recomputes the immediate dominator of one node from its successors'
    /// current dominators, mirroring [`Circuit::immediate_dominators`].
    /// Requires fresh levels: `(level, id)` serves as the topological key.
    fn recompute_dom_node(&mut self, i: usize) {
        let level = &self.level;
        let mut key = |x: u32| (level[x as usize], x);
        // Consumer lists are sorted by (consumer, pin); a one-element
        // lookback deduplicates multi-pin consumers.
        let mut last = u32::MAX;
        let succ = self.fanout[i].iter().map(|&(c, _)| c.0).filter(|&s| {
            let dup = s == last;
            last = s;
            !dup
        });
        self.idom[i] = dominators::recompute_idom(succ, self.po_refs[i] > 0, &self.idom, &mut key);
    }

    fn mark_dirty(&mut self, id: NodeId) {
        if !self.dirty_flag[id.index()] {
            self.dirty_flag[id.index()] = true;
            self.dirty.push(id.0);
        }
    }

    fn mark_dom_dirty(&mut self, id: NodeId) {
        if !self.dom_seed_flag[id.index()] {
            self.dom_seed_flag[id.index()] = true;
            self.dom_seed.push(id.0);
        }
    }

    /// Patch-in for a freshly appended node (always the highest id, so its
    /// edges append at the tail of each consumer list, preserving order).
    pub(crate) fn on_add_node(&mut self, id: NodeId, fanins: &[NodeId]) {
        debug_assert_eq!(id.index(), self.fanout.len());
        self.fanout.push(Vec::new());
        self.po_refs.push(0);
        self.level.push(0);
        self.label.push(PathCount::ZERO);
        self.idom.push(UNREACHABLE);
        self.dirty_flag.push(false);
        self.dom_seed_flag.push(false);
        for (pin, f) in fanins.iter().enumerate() {
            self.fanout[f.index()].push((id, pin));
        }
        self.mark_dirty(id);
        self.mark_dom_dirty(id);
        for &f in fanins {
            self.mark_dom_dirty(f); // its consumer set grew
        }
    }

    /// Patch-out for a node being popped by journal rollback (`id` is the
    /// new length; the node's edges sit at the tail of each consumer list).
    pub(crate) fn on_pop_node(&mut self, id: NodeId, fanins: &[NodeId]) {
        debug_assert_eq!(id.index(), self.fanout.len() - 1);
        for (pin, f) in fanins.iter().enumerate() {
            let list = &mut self.fanout[f.index()];
            let p = list
                .iter()
                .rposition(|&e| e == (id, pin))
                .expect("popped node's fanout edges present");
            list.remove(p);
        }
        for &f in fanins {
            self.mark_dom_dirty(f); // its consumer set shrank
        }
        self.fanout.pop();
        self.po_refs.pop();
        self.level.pop();
        self.label.pop();
        self.idom.pop();
        self.dirty_flag.pop();
        self.dom_seed_flag.pop();
        // `dirty`/`dom_seed` may retain the popped id; refresh range-checks
        // and skips.
    }

    /// Patch for a rewire (also used, with roles swapped, by rollback).
    pub(crate) fn on_rewire(&mut self, id: NodeId, old_fanins: &[NodeId], new_fanins: &[NodeId]) {
        for (pin, f) in old_fanins.iter().enumerate() {
            let list = &mut self.fanout[f.index()];
            match list.binary_search(&(id, pin)) {
                Ok(p) => {
                    list.remove(p);
                }
                Err(_) => unreachable!("rewired node's old fanout edge present"),
            }
        }
        for (pin, f) in new_fanins.iter().enumerate() {
            let list = &mut self.fanout[f.index()];
            let p = list.binary_search(&(id, pin)).unwrap_err();
            list.insert(p, (id, pin));
        }
        self.mark_dirty(id);
        // Only the former and current fanins saw their consumer sets
        // change; `id`'s own successors are untouched by a rewire.
        for &f in old_fanins.iter().chain(new_fanins) {
            self.mark_dom_dirty(f);
        }
    }

    /// Patch for a new primary-output reference.
    pub(crate) fn on_add_output(&mut self, id: NodeId) {
        self.po_refs[id.index()] += 1;
        self.mark_dom_dirty(id); // gained a virtual-sink edge
    }

    /// Patch for a primary-output reference removed by rollback.
    pub(crate) fn on_pop_output(&mut self, id: NodeId) {
        self.po_refs[id.index()] -= 1;
        self.mark_dom_dirty(id); // lost a virtual-sink edge
    }

    /// Recomputes every lazy value affected by the edits since the last
    /// refresh: levels/labels over the downstream closure of the edited
    /// nodes, then dominators over the upstream closure of every node whose
    /// successor set changed (dominator intersections key on fresh levels,
    /// hence the order).
    pub(crate) fn refresh(&mut self, c: &Circuit) {
        self.refresh_levels(c);
        self.refresh_doms(c);
    }

    /// Level/label half of [`refresh`](Self::refresh): one batched
    /// topological pass over the downstream closure of the dirty seeds.
    fn refresh_levels(&mut self, c: &Circuit) {
        if self.dirty.is_empty() {
            return;
        }
        let n = c.len();
        let mut in_closure = vec![false; n];
        let mut members: Vec<NodeId> = Vec::new();
        for i in std::mem::take(&mut self.dirty) {
            let idx = i as usize;
            // Stale seeds for since-popped nodes are skipped.
            if idx < n {
                self.dirty_flag[idx] = false;
                if !in_closure[idx] {
                    in_closure[idx] = true;
                    members.push(NodeId(i));
                }
            }
        }
        let mut stack = members.clone();
        while let Some(x) = stack.pop() {
            for &(consumer, _) in &self.fanout[x.index()] {
                if !in_closure[consumer.index()] {
                    in_closure[consumer.index()] = true;
                    stack.push(consumer);
                    members.push(consumer);
                }
            }
        }
        // Kahn's algorithm restricted to the closure; fanins outside it
        // keep their (clean) values. The recomputed values are independent
        // of which valid topological order is used.
        let mut indeg = vec![0u32; n];
        for &m in &members {
            for f in c.node(m).fanins() {
                if in_closure[f.index()] {
                    indeg[m.index()] += 1;
                }
            }
        }
        let mut queue: Vec<NodeId> =
            members.iter().copied().filter(|m| indeg[m.index()] == 0).collect();
        let mut processed = 0usize;
        while let Some(x) = queue.pop() {
            processed += 1;
            self.recompute_node(c, x);
            for &(consumer, _) in &self.fanout[x.index()] {
                if in_closure[consumer.index()] {
                    indeg[consumer.index()] -= 1;
                    if indeg[consumer.index()] == 0 {
                        queue.push(consumer);
                    }
                }
            }
        }
        debug_assert_eq!(processed, members.len(), "dirty closure must be acyclic");
    }

    /// Dominator half of [`refresh`](Self::refresh). A node's immediate
    /// dominator depends only on the subgraph *reachable from it*, so an
    /// edge change between `f` and its consumer can only disturb nodes that
    /// reach `f` — the upstream fanin-cone closure of the seeds. The whole
    /// closure is recomputed in strictly decreasing `(level, id)` order (a
    /// reverse-topological order once levels are fresh), so every
    /// intersection walks pointers that are already current.
    fn refresh_doms(&mut self, c: &Circuit) {
        if self.dom_seed.is_empty() {
            return;
        }
        let n = c.len();
        let mut in_closure = vec![false; n];
        let mut members: Vec<u32> = Vec::new();
        for i in std::mem::take(&mut self.dom_seed) {
            let idx = i as usize;
            // Stale seeds for since-popped nodes are skipped.
            if idx < n {
                self.dom_seed_flag[idx] = false;
                if !in_closure[idx] {
                    in_closure[idx] = true;
                    members.push(i);
                }
            }
        }
        let mut stack = members.clone();
        while let Some(x) = stack.pop() {
            for f in c.node(NodeId(x)).fanins() {
                if !in_closure[f.index()] {
                    in_closure[f.index()] = true;
                    stack.push(f.0);
                    members.push(f.0);
                }
            }
        }
        members.sort_unstable_by_key(|&i| std::cmp::Reverse((self.level[i as usize], i)));
        for &i in &members {
            self.recompute_dom_node(i as usize);
        }
    }

    /// The consumers of `id` as `(consumer, pin)` pairs, sorted exactly as
    /// [`Circuit::fanout_table`] would list them. Primary-output references
    /// are not included. Always fresh.
    pub fn fanout(&self, id: NodeId) -> &[(NodeId, usize)] {
        &self.fanout[id.index()]
    }

    /// Total consumer count of `id` including primary-output references —
    /// the maintained equivalent of [`Circuit::fanout_counts`]`[id]`.
    /// Always fresh.
    pub fn fanout_count(&self, id: NodeId) -> u32 {
        self.fanout[id.index()].len() as u32 + self.po_refs[id.index()]
    }

    /// Whether `id` is referenced by at least one primary-output slot.
    /// Always fresh.
    pub fn drives_output(&self, id: NodeId) -> bool {
        self.po_refs[id.index()] > 0
    }

    /// Number of primary-output slots referencing `id`. Always fresh.
    pub fn po_refs(&self, id: NodeId) -> u32 {
        self.po_refs[id.index()]
    }

    /// Whether the lazy values (levels, path labels, dominators) are fresh;
    /// made true by [`Circuit::refresh_views`].
    pub fn is_clean(&self) -> bool {
        self.dirty.is_empty() && self.dom_seed.is_empty()
    }

    /// Logic level of `id`, as [`Circuit::levels`] computes it. Requires
    /// freshness (see [`is_clean`](Self::is_clean)).
    pub fn level(&self, id: NodeId) -> u32 {
        debug_assert!(self.is_clean(), "level read from stale views; call refresh_views()");
        self.level[id.index()]
    }

    /// Logic levels of all nodes. Requires freshness.
    pub fn levels(&self) -> &[u32] {
        debug_assert!(self.is_clean(), "levels read from stale views; call refresh_views()");
        &self.level
    }

    /// Procedure 1 path labels with saturation flags, matching
    /// [`Circuit::path_labels_exact`]. Requires freshness.
    pub fn path_labels_exact(&self) -> &[PathCount] {
        debug_assert!(self.is_clean(), "labels read from stale views; call refresh_views()");
        &self.label
    }

    /// Procedure 1 path labels as plain `u128` values, matching
    /// [`Circuit::path_labels`]. Requires freshness.
    pub fn path_labels(&self) -> Vec<u128> {
        debug_assert!(self.is_clean(), "labels read from stale views; call refresh_views()");
        self.label.iter().map(|l| l.value()).collect()
    }

    /// Immediate dominator of `id` over the fanout graph, matching
    /// [`Circuit::immediate_dominators`]`[id]`: `Some(d)` when every path
    /// from `id` to any primary output passes through gate `d`, `None` when
    /// the paths diverge all the way to the outputs or `id` reaches no
    /// output at all. Requires freshness.
    pub fn idom(&self, id: NodeId) -> Option<NodeId> {
        debug_assert!(self.is_clean(), "idom read from stale views; call refresh_views()");
        match self.idom[id.index()] {
            SINK | UNREACHABLE => None,
            d => Some(NodeId(d)),
        }
    }

    /// The paper's BFS order (nodes sorted by `(level, id)`), matching
    /// [`Circuit::bfs_order`]. Requires freshness.
    pub fn bfs_order(&self) -> Vec<NodeId> {
        debug_assert!(self.is_clean(), "order read from stale views; call refresh_views()");
        let mut ids: Vec<NodeId> = (0..self.level.len() as u32).map(NodeId).collect();
        ids.sort_by_key(|id| (self.level[id.index()], id.0));
        ids
    }
}

impl Circuit {
    /// Builds and attaches the incremental views; a no-op if already
    /// enabled. From here on every mutation patches them in place.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic.
    pub fn enable_views(&mut self) {
        if self.views.is_none() {
            let v = CircuitViews::build(self);
            self.views = Some(Box::new(v));
        }
    }

    /// Detaches the incremental views, returning the circuit to
    /// rebuild-on-demand behaviour.
    pub fn disable_views(&mut self) {
        self.views = None;
    }

    /// The incremental views, if enabled.
    pub fn views(&self) -> Option<&CircuitViews> {
        self.views.as_deref()
    }

    /// Brings the lazy views (levels, path labels) up to date with the
    /// current structure. A no-op when views are disabled or already clean.
    pub fn refresh_views(&mut self) {
        if let Some(mut v) = self.views.take() {
            v.refresh(self);
            self.views = Some(v);
        }
    }

    /// Rebuilds the views from scratch (used after id-compacting sweeps).
    pub(crate) fn rebuild_views(&mut self) {
        let v = CircuitViews::build(self);
        self.views = Some(Box::new(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Circuit;

    /// The rebuilt-from-scratch quantities the views must match.
    fn assert_views_match_rebuild(c: &mut Circuit) {
        c.refresh_views();
        let v = c.views().expect("views enabled");
        let table = c.fanout_table();
        let counts = c.fanout_counts();
        let levels = c.levels().unwrap();
        let labels = c.path_labels_exact();
        let idoms = c.immediate_dominators();
        for (id, _) in c.iter() {
            assert_eq!(v.fanout(id), table[id.index()].as_slice(), "fanout order at {id}");
            assert_eq!(v.fanout_count(id), counts[id.index()], "fanout count at {id}");
            assert_eq!(v.level(id), levels[id.index()], "level at {id}");
            assert_eq!(v.path_labels_exact()[id.index()], labels[id.index()], "label at {id}");
            assert_eq!(v.idom(id), idoms[id.index()], "idom at {id}");
        }
        assert_eq!(v.bfs_order(), c.bfs_order().unwrap());
    }

    fn diamond() -> Circuit {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate(GateKind::And, vec![a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Or, vec![a, g1]).unwrap();
        let g3 = c.add_gate(GateKind::Xor, vec![g1, g2]).unwrap();
        c.add_output(g3, "y");
        c
    }

    #[test]
    fn views_match_rebuild_after_every_mutation_kind() {
        let mut c = diamond();
        c.enable_views();
        assert_views_match_rebuild(&mut c);

        let a = c.inputs()[0];
        let g3 = c.outputs()[0];
        c.rewire(g3, GateKind::Nand, vec![a, c.inputs()[1]]).unwrap();
        assert_views_match_rebuild(&mut c);

        let k = c.add_const(false);
        let n = c.add_gate(GateKind::Not, vec![k]).unwrap();
        c.add_output(n, "z");
        c.add_input("late");
        assert_views_match_rebuild(&mut c);

        c.sweep();
        assert_views_match_rebuild(&mut c);
    }

    #[test]
    fn views_match_rebuild_after_rollback() {
        let mut c = diamond();
        c.enable_views();
        c.refresh_views();
        let cp = c.begin_edit();
        let a = c.inputs()[0];
        let g3 = c.outputs()[0];
        c.rewire(g3, GateKind::Or, vec![a, a]).unwrap();
        let n = c.add_gate(GateKind::Not, vec![g3]).unwrap();
        c.add_output(n, "z");
        c.rollback_to(cp);
        assert_views_match_rebuild(&mut c);
    }

    #[test]
    fn eager_views_are_fresh_without_refresh() {
        let mut c = diamond();
        c.enable_views();
        let a = c.inputs()[0];
        let g3 = c.outputs()[0];
        c.rewire(g3, GateKind::Buf, vec![a]).unwrap();
        let v = c.views().unwrap();
        // Adjacency and PO refs are exact immediately after the edit.
        assert_eq!(c.fanout_table()[a.index()], v.fanout(a));
        assert_eq!(c.fanout_counts()[a.index()], v.fanout_count(a));
        assert!(v.drives_output(g3));
        assert!(!v.is_clean()); // the lazy half is pending a refresh
    }

    #[test]
    fn disable_and_reenable() {
        let mut c = diamond();
        c.enable_views();
        c.disable_views();
        assert!(c.views().is_none());
        c.enable_views();
        assert_views_match_rebuild(&mut c);
    }
}
