//! Two-level (sum-of-products) synthesis from truth tables.
//!
//! Used by the examples and tests to materialize arbitrary small functions
//! as gate-level logic — the "before" circuits the resynthesis procedures
//! improve.

use crate::{Circuit, GateKind, NetlistError, NodeId};
use sft_truth::{CubeList, Literal, TruthTable};

impl Circuit {
    /// Builds a sum-of-products implementation of `table` over the given
    /// input lines (one per table input, MSB first) and returns the output
    /// line. Inverters are shared per input; single-cube and constant
    /// functions degenerate gracefully.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cone`] if `inputs.len() != table.inputs()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sft_netlist::Circuit;
    /// use sft_truth::TruthTable;
    ///
    /// let maj = TruthTable::from_minterms(3, &[3, 5, 6, 7])?;
    /// let mut c = Circuit::new("maj");
    /// let ins: Vec<_> = (0..3).map(|i| c.add_input(format!("x{i}"))).collect();
    /// let out = c.synthesize_sop(&ins, &maj)?;
    /// c.add_output(out, "y");
    /// assert_eq!(c.eval_assignment(&[true, true, false]), vec![true]);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn synthesize_sop(
        &mut self,
        inputs: &[NodeId],
        table: &TruthTable,
    ) -> Result<NodeId, NetlistError> {
        if inputs.len() != table.inputs() {
            return Err(NetlistError::Cone(format!(
                "sop needs {} input lines, got {}",
                table.inputs(),
                inputs.len()
            )));
        }
        if table.is_zero() {
            return Ok(self.add_const(false));
        }
        if table.is_one() {
            return Ok(self.add_const(true));
        }
        let cover = CubeList::from_table(table);
        let mut negations: Vec<Option<NodeId>> = vec![None; inputs.len()];
        let mut terms = Vec::with_capacity(cover.len());
        for cube in cover.cubes() {
            let mut fanins = Vec::new();
            for (i, &line) in inputs.iter().enumerate() {
                match cube.literal(i) {
                    Literal::DontCare => {}
                    Literal::Positive => fanins.push(line),
                    Literal::Negative => {
                        let neg = match negations[i] {
                            Some(n) => n,
                            None => {
                                let n = self.add_gate(GateKind::Not, vec![line])?;
                                negations[i] = Some(n);
                                n
                            }
                        };
                        fanins.push(neg);
                    }
                }
            }
            terms.push(match fanins.len() {
                0 => self.add_const(true), // universal cube
                1 => fanins[0],
                _ => self.add_gate(GateKind::And, fanins)?,
            });
        }
        match terms.len() {
            1 => Ok(terms[0]),
            _ => self.add_gate(GateKind::Or, terms),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_3_input_functions_synthesize_exactly() {
        for bits in 0..=255u128 {
            let table = TruthTable::from_bits(3, bits);
            let mut c = Circuit::new("t");
            let ins: Vec<_> = (0..3).map(|i| c.add_input(format!("x{i}"))).collect();
            let out = c.synthesize_sop(&ins, &table).unwrap();
            c.add_output(out, "y");
            c.validate().unwrap();
            for m in 0..8u64 {
                let a: Vec<bool> = (0..3).map(|i| m >> (2 - i) & 1 == 1).collect();
                assert_eq!(c.eval_assignment(&a)[0], table.value(m), "bits {bits:#x} m {m}");
            }
        }
    }

    #[test]
    fn inverters_are_shared() {
        // !x1!x2 + !x1 x3: one inverter for x1, one for x2.
        let table = TruthTable::from_fn(3, |m| {
            let x1 = m >> 2 & 1 == 1;
            let x2 = m >> 1 & 1 == 1;
            let x3 = m & 1 == 1;
            !x1 && (!x2 || x3)
        });
        let mut c = Circuit::new("t");
        let ins: Vec<_> = (0..3).map(|i| c.add_input(format!("x{i}"))).collect();
        let out = c.synthesize_sop(&ins, &table).unwrap();
        c.add_output(out, "y");
        let inverters = c.iter().filter(|(_, n)| n.kind() == GateKind::Not).count();
        assert!(inverters <= 2, "{inverters} inverters");
    }

    #[test]
    fn wrong_input_count_rejected() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let table = TruthTable::one(2);
        assert!(c.synthesize_sop(&[a], &table).is_err());
    }

    #[test]
    fn constants_and_literals() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let out = c.synthesize_sop(&[a], &TruthTable::variable(1, 0)).unwrap();
        assert_eq!(out, a, "identity synthesizes to the input line itself");
        let z = c.synthesize_sop(&[a], &TruthTable::zero(1)).unwrap();
        assert_eq!(c.node(z).kind(), GateKind::Const0);
    }
}
