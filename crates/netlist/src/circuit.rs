use crate::journal::{Journal, UndoOp};
use crate::views::CircuitViews;
use crate::{GateKind, NetlistError};
use std::any::Any;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Identifier of a node (line) in a [`Circuit`].
///
/// Node ids are dense indices; they remain stable under edits and are only
/// compacted by [`Circuit::sweep`], which returns a [`NodeMap`] describing
/// the renumbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a raw index (no validation; out-of-range ids
    /// are rejected by circuit methods that receive them).
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A `(offset, len)` window into the pooled fanin buffer. The node arena
/// stores one span per node instead of a per-node `Vec<NodeId>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Span {
    pub(crate) off: u32,
    pub(crate) len: u32,
}

impl Span {
    pub(crate) fn range(self) -> std::ops::Range<usize> {
        self.off as usize..(self.off + self.len) as usize
    }

    pub(crate) fn end(self) -> usize {
        (self.off + self.len) as usize
    }
}

/// Sentinel in the per-node name-id column: the node has no name.
const NO_NAME: u32 = u32::MAX;

/// Hash-consed string table for node names.
///
/// Names exist only at I/O boundaries (parsers attach them, writers read
/// them); the hot structural paths never touch this table. Each distinct
/// string is stored once; per-node state is a single `u32` id. A refcount
/// per string (`uses`) tracks how many nodes currently carry it, which is
/// what [`Circuit::fresh_name`] consults — interned-but-unused strings do
/// not block a candidate, exactly matching the pre-arena linear scan over
/// node names.
#[derive(Debug, Clone, Default)]
struct NameTable {
    /// Per-node string id (`NO_NAME` when unnamed). Same length as the
    /// node arena.
    ids: Vec<u32>,
    /// The interned strings, stored once each.
    strings: Vec<String>,
    /// Hash → candidate string ids (hash-consing; the inner list is almost
    /// always a single element).
    lookup: HashMap<u64, Vec<u32>>,
    /// Number of nodes currently named by each string.
    uses: Vec<u32>,
}

fn hash_str(s: &str) -> u64 {
    let mut h = DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

impl NameTable {
    /// Interns `s`, returning its string id.
    fn intern(&mut self, s: String) -> u32 {
        let bucket = self.lookup.entry(hash_str(&s)).or_default();
        for &i in bucket.iter() {
            if self.strings[i as usize] == s {
                return i;
            }
        }
        let i = self.strings.len() as u32;
        bucket.push(i);
        self.strings.push(s);
        self.uses.push(0);
        i
    }

    /// Whether some node currently carries the name `s`.
    fn is_used(&self, s: &str) -> bool {
        self.lookup.get(&hash_str(s)).is_some_and(|b| {
            b.iter().any(|&i| self.uses[i as usize] > 0 && self.strings[i as usize] == s)
        })
    }

    /// The name of node `idx`, if any.
    fn get(&self, idx: usize) -> Option<&str> {
        match self.ids[idx] {
            NO_NAME => None,
            i => Some(&self.strings[i as usize]),
        }
    }

    /// Appends the name slot for a freshly pushed node.
    fn push_node(&mut self, name: Option<String>) {
        let id = match name {
            Some(s) => {
                let i = self.intern(s);
                self.uses[i as usize] += 1;
                i
            }
            None => NO_NAME,
        };
        self.ids.push(id);
    }

    /// Drops the name slot of the popped (last) node.
    fn pop_node(&mut self) {
        let id = self.ids.pop().expect("name slot exists");
        if id != NO_NAME {
            self.uses[id as usize] -= 1;
        }
    }

    /// Replaces the name id of node `idx`, maintaining refcounts; returns
    /// the previous id (for the journal).
    fn set_id(&mut self, idx: usize, new: u32) -> u32 {
        let old = std::mem::replace(&mut self.ids[idx], new);
        if old != NO_NAME {
            self.uses[old as usize] -= 1;
        }
        if new != NO_NAME {
            self.uses[new as usize] += 1;
        }
        old
    }

    /// Bytes held by the interned strings (contents only).
    fn string_bytes(&self) -> usize {
        self.strings.iter().map(|s| s.len()).sum()
    }
}

/// A borrowed view of a single node of a [`Circuit`]: its kind, its fanin
/// slice in the shared pool, and its resolved name.
///
/// This is a cheap `Copy` proxy over the flat arena — it is constructed on
/// the fly by [`Circuit::node`] and [`Circuit::iter`] and borrows from the
/// circuit, it is not the storage itself. The accessors return data with
/// the *circuit's* lifetime, so `c.node(id).fanins()` can outlive the
/// temporary proxy value.
#[derive(Debug, Clone, Copy)]
pub struct Node<'a> {
    kind: GateKind,
    fanins: &'a [NodeId],
    name: Option<&'a str>,
}

impl<'a> Node<'a> {
    /// The node kind.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The fanin lines of the node (empty for inputs and constants).
    pub fn fanins(&self) -> &'a [NodeId] {
        self.fanins
    }

    /// Optional user-facing name (always present for primary inputs).
    pub fn name(&self) -> Option<&'a str> {
        self.name
    }
}

/// Renumbering map returned by [`Circuit::sweep`]: `map[old.index()]` is the
/// new id, or `None` if the node was removed.
#[derive(Debug, Clone, Default)]
pub struct NodeMap {
    map: Vec<Option<NodeId>>,
}

impl NodeMap {
    /// Translates an old id; `None` if the node was removed.
    pub fn get(&self, old: NodeId) -> Option<NodeId> {
        self.map.get(old.index()).copied().flatten()
    }
}

/// A combinational gate-level circuit.
///
/// The circuit is a DAG of nodes stored as a flat arena: a `repr(u8)` kind
/// column, a `(offset, len)` span per node into one pooled fanin buffer,
/// and an interned name side-table consulted only at I/O boundaries.
/// [`Circuit::node`] materialises a cheap [`Node`] proxy over the arena.
/// Primary outputs are references to nodes (a node may drive several
/// outputs). Fanout branches are implicit: a node with several consumers
/// has one branch per (consumer, pin).
///
/// # Examples
///
/// ```
/// use sft_netlist::{Circuit, GateKind};
///
/// // y = (a AND b) OR c
/// let mut c = Circuit::new("ex");
/// let a = c.add_input("a");
/// let b = c.add_input("b");
/// let ci = c.add_input("c");
/// let g1 = c.add_gate(GateKind::And, vec![a, b])?;
/// let g2 = c.add_gate(GateKind::Or, vec![g1, ci])?;
/// c.add_output(g2, "y");
/// assert_eq!(c.eval_assignment(&[false, true, true]), vec![true]);
/// # Ok::<(), sft_netlist::NetlistError>(())
/// ```
///
/// # Transactions and views
///
/// Structural mutation can be wrapped in an edit transaction
/// ([`begin_edit`](Self::begin_edit) / [`commit`](Self::commit) /
/// [`rollback_to`](Self::rollback_to)) for O(#edits) rollback, and the
/// circuit can maintain incremental derived views
/// ([`enable_views`](Self::enable_views)) instead of rebuilding fanout
/// tables, levels and path labels per call. Neither participates in
/// [`Clone`] or equality: a clone starts with an empty journal and no
/// views, and two circuits compare equal on structure alone (pool layout
/// and interning order are invisible).
///
/// # Fanin pool discipline
///
/// The pool is append-only between [`sweep`](Self::sweep)s: a
/// [`rewire`](Self::rewire) appends the new fanins and repoints the node's
/// span, leaving the old span's storage in place so journal rollback can
/// restore the old `(offset, len)` in O(1). Rollback truncates the pool
/// tail as it unwinds, so a rolled-back transaction reclaims everything it
/// appended; only *committed* rewires leave garbage, which `sweep`
/// compacts away.
#[derive(Debug)]
pub struct Circuit {
    pub(crate) name: String,
    /// Node kind column (one byte per node).
    pub(crate) kinds: Vec<GateKind>,
    /// Per-node `(offset, len)` window into `pool`.
    pub(crate) spans: Vec<Span>,
    /// Pooled fanin buffer; spans address windows of it. May contain
    /// garbage left by committed rewires until the next `sweep`.
    pub(crate) pool: Vec<NodeId>,
    /// Interned node names (I/O boundary only).
    names: NameTable,
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) outputs: Vec<NodeId>,
    pub(crate) output_names: Vec<Option<String>>,
    pub(crate) journal: Journal,
    pub(crate) views: Option<Box<CircuitViews>>,
    /// Sum of span lengths — the live entries of `pool`.
    live_fanins: usize,
    /// Whether spans are contiguous in id order and cover `pool` exactly
    /// (true until the first committed-or-pending rewire; restored by
    /// `sweep` and by full rollback). When set, the pool *is* the fanin
    /// CSR payload.
    flat: bool,
    /// Whether every fanin id is smaller than its node id, i.e. id order
    /// is a topological order (true at append-only construction; a rewire
    /// can introduce a forward edge). When set, consumers can skip their
    /// topological sort.
    topo_ids: bool,
    /// Monotonic structure version: bumped by every mutation, including
    /// journal undo. Keys the [`derived`](Self::derived) snapshot cache.
    version: u64,
    /// Version-stamped slot for one derived snapshot (e.g. the fault-sim
    /// SoA view). Not cloned; interior-mutable so read-only sharing works.
    derived: Mutex<Option<(u64, Arc<dyn Any + Send + Sync>)>>,
}

impl Clone for Circuit {
    fn clone(&self) -> Self {
        Circuit {
            name: self.name.clone(),
            kinds: self.kinds.clone(),
            spans: self.spans.clone(),
            pool: self.pool.clone(),
            names: self.names.clone(),
            inputs: self.inputs.clone(),
            outputs: self.outputs.clone(),
            output_names: self.output_names.clone(),
            journal: Journal::default(),
            views: None,
            live_fanins: self.live_fanins,
            flat: self.flat,
            topo_ids: self.topo_ids,
            version: 0,
            derived: Mutex::new(None),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.name.clone_from(&source.name);
        self.kinds.clone_from(&source.kinds);
        self.spans.clone_from(&source.spans);
        self.pool.clone_from(&source.pool);
        self.names.clone_from(&source.names);
        self.inputs.clone_from(&source.inputs);
        self.outputs.clone_from(&source.outputs);
        self.output_names.clone_from(&source.output_names);
        self.journal = Journal::default();
        self.views = None;
        self.live_fanins = source.live_fanins;
        self.flat = source.flat;
        self.topo_ids = source.topo_ids;
        self.version = 0;
        self.derived = Mutex::new(None);
    }
}

impl PartialEq for Circuit {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.kinds == other.kinds
            && self.inputs == other.inputs
            && self.outputs == other.outputs
            && self.output_names == other.output_names
            && (0..self.kinds.len()).all(|i| {
                let id = NodeId(i as u32);
                self.fanins(id) == other.fanins(id) && self.names.get(i) == other.names.get(i)
            })
    }
}

impl Eq for Circuit {}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new(name: impl Into<String>) -> Self {
        Circuit {
            name: name.into(),
            kinds: Vec::new(),
            spans: Vec::new(),
            pool: Vec::new(),
            names: NameTable::default(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            output_names: Vec::new(),
            journal: Journal::default(),
            views: None,
            live_fanins: 0,
            flat: true,
            topo_ids: true,
            version: 0,
            derived: Mutex::new(None),
        }
    }

    /// Creates an empty circuit with room for `nodes` nodes, so generators
    /// and parsers building 10K–1M-gate circuits do not re-grow the node
    /// arena logarithmically many times.
    pub fn with_capacity(name: impl Into<String>, nodes: usize) -> Self {
        let mut c = Circuit::new(name);
        c.reserve(nodes);
        c
    }

    /// Reserves capacity for at least `additional` more nodes (and a
    /// two-fanins-per-node estimate of pool room).
    pub fn reserve(&mut self, additional: usize) {
        self.kinds.reserve(additional);
        self.spans.reserve(additional);
        self.names.ids.reserve(additional);
        self.pool.reserve(additional * 2);
    }

    /// Bumps the structure version (invalidating [`derived`](Self::derived)
    /// snapshots).
    pub(crate) fn touch(&mut self) {
        self.version += 1;
    }

    /// The circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        let old = std::mem::replace(&mut self.name, name.into());
        self.journal.record(UndoOp::CircuitName { name: old });
        self.touch();
    }

    /// Adds a primary input and returns its id.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(GateKind::Input);
        self.spans.push(Span { off: self.pool.len() as u32, len: 0 });
        self.names.push_node(Some(name.into()));
        self.inputs.push(id);
        self.journal.record(UndoOp::PopNode { was_input: true });
        if let Some(v) = &mut self.views {
            v.on_add_node(id, &[]);
        }
        self.touch();
        id
    }

    /// Adds a constant node and returns its id.
    pub fn add_const(&mut self, value: bool) -> NodeId {
        let kind = if value { GateKind::Const1 } else { GateKind::Const0 };
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(kind);
        self.spans.push(Span { off: self.pool.len() as u32, len: 0 });
        self.names.push_node(None);
        self.journal.record(UndoOp::PopNode { was_input: false });
        if let Some(v) = &mut self.views {
            v.on_add_node(id, &[]);
        }
        self.touch();
        id
    }

    /// Adds a gate and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Arity`] if the fanin count is invalid for the
    /// kind, [`NetlistError::NotAGate`] if `kind` is
    /// [`GateKind::Input`], and [`NetlistError::NodeOutOfRange`] if a fanin
    /// id does not exist yet.
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        fanins: Vec<NodeId>,
    ) -> Result<NodeId, NetlistError> {
        if kind == GateKind::Input {
            return Err(NetlistError::NotAGate(NodeId(self.kinds.len() as u32)));
        }
        if !kind.accepts_arity(fanins.len()) {
            return Err(NetlistError::Arity { kind: kind.name(), got: fanins.len() });
        }
        for &f in &fanins {
            if f.index() >= self.kinds.len() {
                return Err(NetlistError::NodeOutOfRange(f));
            }
        }
        let id = NodeId(self.kinds.len() as u32);
        let span = Span { off: self.pool.len() as u32, len: fanins.len() as u32 };
        self.pool.extend_from_slice(&fanins);
        self.kinds.push(kind);
        self.spans.push(span);
        self.names.push_node(None);
        self.live_fanins += span.len as usize;
        self.journal.record(UndoOp::PopNode { was_input: false });
        if let Some(v) = &mut self.views {
            v.on_add_node(id, &self.pool[span.range()]);
        }
        self.touch();
        Ok(id)
    }

    /// Adds a named gate.
    ///
    /// # Errors
    ///
    /// Same as [`add_gate`](Self::add_gate).
    pub fn add_named_gate(
        &mut self,
        kind: GateKind,
        fanins: Vec<NodeId>,
        name: impl Into<String>,
    ) -> Result<NodeId, NetlistError> {
        let id = self.add_gate(kind, fanins)?;
        let nid = self.names.intern(name.into());
        self.names.set_id(id.index(), nid);
        Ok(id)
    }

    /// Registers `node` as a primary output (a node may drive several
    /// outputs).
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist.
    pub fn add_output(&mut self, node: NodeId, name: impl Into<String>) {
        assert!(node.index() < self.kinds.len(), "output node out of range");
        self.outputs.push(node);
        self.output_names.push(Some(name.into()));
        self.journal.record(UndoOp::PopOutput);
        if let Some(v) = &mut self.views {
            v.on_add_output(node);
        }
        self.touch();
    }

    /// Number of nodes (lines) in the circuit, including dead ones.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the circuit has no nodes.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// A borrowed proxy of the node with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> Node<'_> {
        let idx = id.index();
        Node {
            kind: self.kinds[idx],
            fanins: &self.pool[self.spans[idx].range()],
            name: self.names.get(idx),
        }
    }

    /// The kind of node `id` (no name-table touch).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn kind(&self, id: NodeId) -> GateKind {
        self.kinds[id.index()]
    }

    /// The fanin slice of node `id` in the shared pool (no name-table
    /// touch).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn fanins(&self, id: NodeId) -> &[NodeId] {
        &self.pool[self.spans[id.index()].range()]
    }

    /// The name of node `id`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_name(&self, id: NodeId) -> Option<&str> {
        self.names.get(id.index())
    }

    /// Iterator over `(id, node)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Node<'_>)> {
        (0..self.kinds.len() as u32).map(move |i| (NodeId(i), self.node(NodeId(i))))
    }

    /// The primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// The primary outputs, in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// The name of output slot `i`, if any.
    pub fn output_name(&self, i: usize) -> Option<&str> {
        self.output_names.get(i).and_then(|n| n.as_deref())
    }

    /// Sets the name of a node (useful after rewiring).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_node_name(&mut self, id: NodeId, name: impl Into<String>) {
        let nid = self.names.intern(name.into());
        let old = self.names.set_id(id.index(), nid);
        self.journal.record(UndoOp::NodeName { id, name_id: old });
        self.touch();
    }

    /// Redefines node `id` as a gate of `kind` with `fanins`.
    ///
    /// This is the primitive used by resynthesis: the node keeps its id, so
    /// all consumers automatically see the new function. The new fanins are
    /// appended to the pool and the node's span repointed; the old span is
    /// left in place for O(1) rollback (see "Fanin pool discipline" on
    /// [`Circuit`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotAGate`] if `id` is a primary input or
    /// `kind` is [`GateKind::Input`]; [`NetlistError::Arity`] or
    /// [`NetlistError::NodeOutOfRange`] on malformed fanins; and
    /// [`NetlistError::Cycle`] if the edit would create a combinational
    /// cycle (i.e. `id` is in the transitive fanin of one of the new
    /// fanins).
    pub fn rewire(
        &mut self,
        id: NodeId,
        kind: GateKind,
        fanins: Vec<NodeId>,
    ) -> Result<(), NetlistError> {
        if id.index() >= self.kinds.len() {
            return Err(NetlistError::NodeOutOfRange(id));
        }
        if self.kinds[id.index()] == GateKind::Input || kind == GateKind::Input {
            return Err(NetlistError::NotAGate(id));
        }
        if !kind.accepts_arity(fanins.len()) {
            return Err(NetlistError::Arity { kind: kind.name(), got: fanins.len() });
        }
        for &f in &fanins {
            if f.index() >= self.kinds.len() {
                return Err(NetlistError::NodeOutOfRange(f));
            }
        }
        if self.reaches(id, &fanins) {
            return Err(NetlistError::Cycle(id));
        }
        let idx = id.index();
        let old_kind = self.kinds[idx];
        let old_span = self.spans[idx];
        let new_span = Span { off: self.pool.len() as u32, len: fanins.len() as u32 };
        self.pool.extend_from_slice(&fanins);
        self.kinds[idx] = kind;
        self.spans[idx] = new_span;
        self.live_fanins = self.live_fanins + new_span.len as usize - old_span.len as usize;
        self.flat = false;
        if fanins.iter().any(|f| f.0 >= id.0) {
            self.topo_ids = false;
        }
        if let Some(v) = &mut self.views {
            v.on_rewire(id, &self.pool[old_span.range()], &self.pool[new_span.range()]);
        }
        self.journal.record(UndoOp::Rewire { id, kind: old_kind, span: old_span });
        self.touch();
        Ok(())
    }

    /// Whether `target` is reachable from any of `from` by walking fanins
    /// (i.e. `target` is in the transitive fanin closure of `from`,
    /// including `from` itself).
    pub fn reaches(&self, target: NodeId, from: &[NodeId]) -> bool {
        let mut seen = vec![false; self.kinds.len()];
        let mut stack: Vec<NodeId> = from.to_vec();
        while let Some(n) = stack.pop() {
            if n == target {
                return true;
            }
            if std::mem::replace(&mut seen[n.index()], true) {
                continue;
            }
            stack.extend_from_slice(self.fanins(n));
        }
        false
    }

    /// A topological order of all nodes (fanins before fanouts).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cyclic`] if the circuit contains a cycle.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, NetlistError> {
        let n = self.kinds.len();
        let mut indegree = vec![0u32; n];
        let mut fanouts: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, deg) in indegree.iter_mut().enumerate() {
            let fanins = &self.pool[self.spans[i].range()];
            *deg = fanins.len() as u32;
            for f in fanins {
                fanouts[f.index()].push(i as u32);
            }
        }
        let mut order = Vec::with_capacity(n);
        let mut queue: Vec<u32> = (0..n as u32).filter(|&i| indegree[i as usize] == 0).collect();
        while let Some(i) = queue.pop() {
            order.push(NodeId(i));
            for &o in &fanouts[i as usize] {
                indegree[o as usize] -= 1;
                if indegree[o as usize] == 0 {
                    queue.push(o);
                }
            }
        }
        if order.len() != n {
            return Err(NetlistError::Cyclic);
        }
        Ok(order)
    }

    /// Logic level of every node: inputs and constants are level 0, a gate
    /// is one more than its deepest fanin.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cyclic`] if the circuit contains a cycle.
    pub fn levels(&self) -> Result<Vec<u32>, NetlistError> {
        let order = self.topo_order()?;
        let mut level = vec![0u32; self.kinds.len()];
        for id in order {
            let idx = id.index();
            if self.kinds[idx].is_gate() {
                let fanins = &self.pool[self.spans[idx].range()];
                level[idx] = 1 + fanins.iter().map(|f| level[f.index()]).max().unwrap_or(0);
            }
        }
        Ok(level)
    }

    /// The paper's *BFS order* of lines: nodes sorted by level (inputs
    /// first), ties broken by id. Procedures 2 and 3 traverse this order in
    /// reverse.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cyclic`] if the circuit contains a cycle.
    pub fn bfs_order(&self) -> Result<Vec<NodeId>, NetlistError> {
        let level = self.levels()?;
        let mut ids: Vec<NodeId> = (0..self.kinds.len() as u32).map(NodeId).collect();
        ids.sort_by_key(|id| (level[id.index()], id.0));
        Ok(ids)
    }

    /// Fanout table: for every node, the list of `(consumer, pin)` pairs.
    /// Primary-output references are not included.
    pub fn fanout_table(&self) -> Vec<Vec<(NodeId, usize)>> {
        let mut t: Vec<Vec<(NodeId, usize)>> = vec![Vec::new(); self.kinds.len()];
        for i in 0..self.kinds.len() {
            for (pin, f) in self.pool[self.spans[i].range()].iter().enumerate() {
                t[f.index()].push((NodeId(i as u32), pin));
            }
        }
        t
    }

    /// Number of consumers of each node, counting primary-output references.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut c = vec![0u32; self.kinds.len()];
        for span in &self.spans {
            for f in &self.pool[span.range()] {
                c[f.index()] += 1;
            }
        }
        for o in &self.outputs {
            c[o.index()] += 1;
        }
        c
    }

    /// Marks every node reachable from the primary outputs by walking
    /// fanins ("live" logic).
    pub fn live_mask(&self) -> Vec<bool> {
        let mut live = vec![false; self.kinds.len()];
        let mut stack: Vec<NodeId> = self.outputs.clone();
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut live[n.index()], true) {
                continue;
            }
            stack.extend_from_slice(self.fanins(n));
        }
        live
    }

    /// Removes dead (unreachable-from-output) non-input nodes, compacts ids
    /// *and* the fanin pool (reclaiming garbage left by committed rewires),
    /// and garbage-collects the name table; returns the renumbering map.
    /// Primary inputs are always kept. Afterwards the arena is canonical:
    /// spans are contiguous in id order and cover the pool exactly.
    ///
    /// # Panics
    ///
    /// Panics if an edit transaction is open (id compaction cannot be
    /// journalled; commit or roll back first).
    pub fn sweep(&mut self) -> NodeMap {
        assert!(!self.journal.recording(), "Circuit::sweep inside an open edit transaction");
        let mut keep = self.live_mask();
        for i in &self.inputs {
            keep[i.index()] = true;
        }
        let n = self.kinds.len();
        let mut map = vec![None; n];
        let mut new_kinds = Vec::with_capacity(n);
        let mut new_spans = Vec::with_capacity(n);
        let mut new_pool = Vec::with_capacity(self.live_fanins);
        let mut new_names = NameTable::default();
        let mut topo_ids = true;
        for i in 0..n {
            if !keep[i] {
                continue;
            }
            let new_id = NodeId(new_kinds.len() as u32);
            map[i] = Some(new_id);
            new_kinds.push(self.kinds[i]);
            let off = new_pool.len() as u32;
            new_pool.extend_from_slice(&self.pool[self.spans[i].range()]);
            new_spans.push(Span { off, len: new_pool.len() as u32 - off });
            new_names.push_node(self.names.get(i).map(String::from));
        }
        for (i, span) in new_spans.iter().enumerate() {
            for f in &mut new_pool[span.range()] {
                *f = map[f.index()].expect("live node fanins are live");
                if f.0 >= i as u32 {
                    topo_ids = false;
                }
            }
        }
        self.kinds = new_kinds;
        self.spans = new_spans;
        self.live_fanins = new_pool.len();
        self.pool = new_pool;
        self.names = new_names;
        self.flat = true;
        self.topo_ids = topo_ids;
        for i in &mut self.inputs {
            *i = map[i.index()].expect("inputs kept");
        }
        for o in &mut self.outputs {
            *o = map[o.index()].expect("outputs are live");
        }
        if self.views.is_some() {
            self.rebuild_views();
        }
        self.touch();
        NodeMap { map }
    }

    /// Full structural validation: arities, fanin ranges, acyclicity, and
    /// input/output list consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for i in 0..self.kinds.len() {
            let kind = self.kinds[i];
            let fanins = &self.pool[self.spans[i].range()];
            if !kind.accepts_arity(fanins.len()) {
                return Err(NetlistError::Arity { kind: kind.name(), got: fanins.len() });
            }
            for &f in fanins {
                if f.index() >= self.kinds.len() {
                    return Err(NetlistError::NodeOutOfRange(f));
                }
            }
            let is_input_kind = kind == GateKind::Input;
            let in_list = self.inputs.contains(&NodeId(i as u32));
            if is_input_kind != in_list {
                return Err(NetlistError::NotAGate(NodeId(i as u32)));
            }
        }
        for &o in &self.outputs {
            if o.index() >= self.kinds.len() {
                return Err(NetlistError::NodeOutOfRange(o));
            }
        }
        self.topo_order()?;
        Ok(())
    }

    /// Evaluates the circuit on a single assignment (one bool per primary
    /// input, in input order); returns one bool per primary output.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` differs from the number of inputs or the
    /// circuit is cyclic.
    pub fn eval_assignment(&self, assignment: &[bool]) -> Vec<bool> {
        assert_eq!(assignment.len(), self.inputs.len(), "assignment length mismatch");
        let order = self.topo_order().expect("combinational circuit");
        let mut values = vec![false; self.kinds.len()];
        let input_pos: HashMap<NodeId, usize> =
            self.inputs.iter().copied().enumerate().map(|(i, id)| (id, i)).collect();
        let mut buf = Vec::new();
        for id in order {
            let idx = id.index();
            values[idx] = match self.kinds[idx] {
                GateKind::Input => assignment[input_pos[&id]],
                kind => {
                    buf.clear();
                    buf.extend(
                        self.pool[self.spans[idx].range()].iter().map(|f| values[f.index()]),
                    );
                    kind.eval(&buf)
                }
            };
        }
        self.outputs.iter().map(|o| values[o.index()]).collect()
    }

    /// A fresh unique name based on `prefix` not colliding with existing
    /// node names.
    pub fn fresh_name(&self, prefix: &str) -> String {
        let mut k = self.kinds.len();
        loop {
            let candidate = format!("{prefix}{k}");
            if !self.names.is_used(&candidate) {
                return candidate;
            }
            k += 1;
        }
    }

    // ---- arena introspection ------------------------------------------

    /// Monotonic structure version: bumped by every mutation (including
    /// journal rollback), so version equality on the *same* circuit value
    /// implies structural identity. Keys the [`derived`](Self::derived)
    /// snapshot cache. Resets on clone (the cache slot is per-instance).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Returns the cached derived snapshot of type `T` if it is stamped
    /// with the current version, otherwise runs `build` and caches the
    /// result. One slot: caching a new type (or a new version) evicts the
    /// previous snapshot.
    ///
    /// This is how engines share one Circuit→SoA translation per structural
    /// state instead of rebuilding per campaign entry; the slot is interior
    /// mutable so read-only borrows (e.g. parallel scoring workers) can hit
    /// it concurrently.
    pub fn derived<T, F>(&self, build: F) -> Arc<T>
    where
        T: Any + Send + Sync,
        F: FnOnce(&Circuit) -> T,
    {
        let v = self.version;
        {
            let slot = self.derived.lock().unwrap_or_else(|e| e.into_inner());
            if let Some((cv, any)) = slot.as_ref() {
                if *cv == v {
                    if let Ok(hit) = Arc::clone(any).downcast::<T>() {
                        return hit;
                    }
                }
            }
        }
        let built: Arc<T> = Arc::new(build(self));
        let mut slot = self.derived.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some((v, built.clone() as Arc<dyn Any + Send + Sync>));
        built
    }

    /// Whether the fanin spans are contiguous in id order and cover the
    /// pool exactly — i.e. the pool is already the payload of a fanin CSR.
    /// True after construction and after [`sweep`](Self::sweep); any rewire
    /// clears it (conservatively) until the next sweep or a full rollback.
    pub fn fanin_spans_flat(&self) -> bool {
        self.flat
    }

    /// Whether id order is a topological order (every fanin id smaller
    /// than its node id). True for append-only construction; a rewire can
    /// introduce a forward edge and clears it conservatively.
    pub fn ids_topological(&self) -> bool {
        self.topo_ids
    }

    /// The whole fanin pool as one slice when the layout is flat
    /// ([`fanin_spans_flat`](Self::fanin_spans_flat)): the concatenation of
    /// every node's fanins in id order. `None` when rewires have
    /// fragmented the pool.
    pub fn fanin_pool_flat(&self) -> Option<&[NodeId]> {
        if self.flat {
            Some(&self.pool)
        } else {
            None
        }
    }

    /// Number of live fanin references (sum of span lengths).
    pub fn fanin_count(&self) -> usize {
        self.live_fanins
    }

    /// Total entries in the fanin pool, including garbage left by
    /// committed rewires (reclaimed by [`sweep`](Self::sweep)).
    pub fn fanin_pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Memory footprint of the arena, in bytes: `(node_columns,
    /// pool_bytes, name_bytes)` where `node_columns` covers the kind, span
    /// and name-id columns, `pool_bytes` the fanin pool (including
    /// garbage), and `name_bytes` the interned strings (contents +
    /// per-string id/use columns).
    pub fn memory_footprint(&self) -> (usize, usize, usize) {
        let node_cols = self.kinds.len() * std::mem::size_of::<GateKind>()
            + self.spans.len() * std::mem::size_of::<Span>()
            + self.names.ids.len() * std::mem::size_of::<u32>();
        let pool = self.pool.len() * std::mem::size_of::<NodeId>();
        let names = self.names.string_bytes()
            + self.names.strings.len()
                * (std::mem::size_of::<String>() + 2 * std::mem::size_of::<u32>());
        (node_cols, pool, names)
    }

    /// Number of distinct interned name strings.
    pub fn interned_names(&self) -> usize {
        self.names.strings.len()
    }

    // ---- journal/undo plumbing (crate-internal) -----------------------

    /// Restores the layout flags captured by a checkpoint; called by
    /// rollback once the pool is fully unwound (every transactional append
    /// sat at the pool tail when undone, so unwinding in reverse order
    /// returns the pool to its checkpoint length exactly).
    pub(crate) fn restore_layout(&mut self, flat: bool, topo_ids: bool) {
        self.flat = flat;
        self.topo_ids = topo_ids;
    }

    /// The current layout flags, captured into a checkpoint.
    pub(crate) fn layout_flags(&self) -> (bool, bool) {
        (self.flat, self.topo_ids)
    }

    /// Undo of `add_*`: pops the newest node, truncating the pool tail.
    pub(crate) fn undo_pop_node(&mut self, was_input: bool) {
        let idx = self.kinds.len() - 1;
        let id = NodeId(idx as u32);
        let span = self.spans[idx];
        if let Some(v) = &mut self.views {
            v.on_pop_node(id, &self.pool[span.range()]);
        }
        self.kinds.pop();
        self.spans.pop();
        self.names.pop_node();
        self.live_fanins -= span.len as usize;
        if span.end() == self.pool.len() {
            self.pool.truncate(span.off as usize);
        }
        if was_input {
            self.inputs.pop();
        }
        self.touch();
    }

    /// Undo of `rewire`: restores the node's previous kind and span, then
    /// truncates the rewire's pool append if it sits at the tail.
    pub(crate) fn undo_rewire(&mut self, id: NodeId, kind: GateKind, span: Span) {
        let idx = id.index();
        let undone = self.spans[idx];
        self.kinds[idx] = kind;
        self.spans[idx] = span;
        self.live_fanins = self.live_fanins + span.len as usize - undone.len as usize;
        if let Some(v) = &mut self.views {
            v.on_rewire(id, &self.pool[undone.range()], &self.pool[span.range()]);
        }
        if undone.end() == self.pool.len() {
            self.pool.truncate(undone.off as usize);
        }
        self.touch();
    }

    /// Undo of `set_node_name`: restores the previous interned name id.
    pub(crate) fn undo_node_name(&mut self, id: NodeId, name_id: u32) {
        self.names.set_id(id.index(), name_id);
        self.touch();
    }

    /// Resolves a pool span to its fanin slice (journal pre-images).
    pub(crate) fn span_slice(&self, span: Span) -> &[NodeId] {
        &self.pool[span.range()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and_or() -> (Circuit, NodeId, NodeId) {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let x = c.add_input("x");
        let g1 = c.add_gate(GateKind::And, vec![a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Or, vec![g1, x]).unwrap();
        c.add_output(g2, "y");
        (c, g1, g2)
    }

    #[test]
    fn build_and_eval() {
        let (c, _, _) = and_or();
        assert_eq!(c.eval_assignment(&[true, true, false]), vec![true]);
        assert_eq!(c.eval_assignment(&[true, false, false]), vec![false]);
        assert_eq!(c.eval_assignment(&[false, false, true]), vec![true]);
        c.validate().unwrap();
    }

    #[test]
    fn arity_checked() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        assert!(matches!(c.add_gate(GateKind::Not, vec![a, a]), Err(NetlistError::Arity { .. })));
        assert!(matches!(c.add_gate(GateKind::And, vec![]), Err(NetlistError::Arity { .. })));
        assert!(matches!(
            c.add_gate(GateKind::And, vec![NodeId(99)]),
            Err(NetlistError::NodeOutOfRange(_))
        ));
        assert!(matches!(c.add_gate(GateKind::Input, vec![]), Err(NetlistError::NotAGate(_))));
    }

    #[test]
    fn rewire_rejects_cycles() {
        let (mut c, g1, g2) = and_or();
        // g1 := BUF(g2) would create a cycle g1 -> g2 -> g1.
        assert!(matches!(c.rewire(g1, GateKind::Buf, vec![g2]), Err(NetlistError::Cycle(_))));
        // Self-loop rejected too.
        assert!(matches!(c.rewire(g1, GateKind::Buf, vec![g1]), Err(NetlistError::Cycle(_))));
        // A legal rewire works and consumers see it.
        let a = c.inputs()[0];
        c.rewire(g1, GateKind::Buf, vec![a]).unwrap();
        assert_eq!(c.eval_assignment(&[true, false, false]), vec![true]);
    }

    #[test]
    fn rewire_rejects_inputs() {
        let (mut c, _, _) = and_or();
        let a = c.inputs()[0];
        assert!(matches!(c.rewire(a, GateKind::Buf, vec![a]), Err(NetlistError::NotAGate(_))));
    }

    #[test]
    fn topo_and_levels() {
        let (c, g1, g2) = and_or();
        let order = c.topo_order().unwrap();
        let pos: Vec<usize> =
            (0..c.len()).map(|i| order.iter().position(|n| n.index() == i).unwrap()).collect();
        assert!(pos[g1.index()] < pos[g2.index()]);
        let levels = c.levels().unwrap();
        assert_eq!(levels[g1.index()], 1);
        assert_eq!(levels[g2.index()], 2);
        assert_eq!(levels[c.inputs()[0].index()], 0);
    }

    #[test]
    fn bfs_order_sorted_by_level() {
        let (c, _, _) = and_or();
        let order = c.bfs_order().unwrap();
        let levels = c.levels().unwrap();
        for w in order.windows(2) {
            assert!(levels[w[0].index()] <= levels[w[1].index()]);
        }
    }

    #[test]
    fn fanout_accounting() {
        let (c, g1, g2) = and_or();
        let t = c.fanout_table();
        assert_eq!(t[g1.index()], vec![(g2, 0)]);
        let counts = c.fanout_counts();
        assert_eq!(counts[g2.index()], 1); // the PO reference
        assert_eq!(counts[g1.index()], 1);
    }

    #[test]
    fn sweep_removes_dead_logic() {
        let (mut c, _, _) = and_or();
        let a = c.inputs()[0];
        let dead = c.add_gate(GateKind::Not, vec![a]).unwrap();
        assert_eq!(c.len(), 6);
        let map = c.sweep();
        assert_eq!(c.len(), 5);
        assert!(map.get(dead).is_none());
        c.validate().unwrap();
        assert_eq!(c.eval_assignment(&[true, true, false]), vec![true]);
    }

    #[test]
    fn sweep_keeps_unused_inputs() {
        let mut c = Circuit::new("t");
        let _unused = c.add_input("u");
        let a = c.add_input("a");
        let g = c.add_gate(GateKind::Buf, vec![a]).unwrap();
        c.add_output(g, "y");
        c.sweep();
        assert_eq!(c.inputs().len(), 2);
        c.validate().unwrap();
    }

    #[test]
    fn fresh_name_avoids_collisions() {
        let mut c = Circuit::new("t");
        c.add_input("w1");
        let n = c.fresh_name("w");
        assert_ne!(n, "w1");
    }

    #[test]
    fn fresh_name_ignores_vacated_names() {
        // A name released by a rename no longer blocks fresh_name, exactly
        // like the pre-arena linear scan over node names.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.add_gate(GateKind::Buf, vec![a]).unwrap();
        c.set_node_name(g, "w2");
        c.set_node_name(g, "other");
        assert_eq!(c.fresh_name("w"), "w2");
    }

    #[test]
    fn pool_stays_flat_under_append_only_growth() {
        let (c, _, _) = and_or();
        assert!(c.fanin_spans_flat());
        assert!(c.ids_topological());
        let flat = c.fanin_pool_flat().unwrap();
        assert_eq!(flat.len(), c.fanin_count());
        // Concatenation of per-node fanins in id order.
        let concat: Vec<NodeId> = c.iter().flat_map(|(_, n)| n.fanins().to_vec()).collect();
        assert_eq!(flat, concat.as_slice());
    }

    #[test]
    fn rewire_fragments_then_sweep_recompacts() {
        let (mut c, g1, _) = and_or();
        let a = c.inputs()[0];
        let before = c.fanin_pool_len();
        c.rewire(g1, GateKind::Buf, vec![a]).unwrap();
        assert!(!c.fanin_spans_flat());
        assert!(c.fanin_pool_len() > before - 1); // old span leaked until sweep
        assert_eq!(c.fanin_count(), c.iter().map(|(_, n)| n.fanins().len()).sum::<usize>());
        c.sweep();
        assert!(c.fanin_spans_flat());
        assert_eq!(c.fanin_pool_len(), c.fanin_count());
        c.validate().unwrap();
    }

    #[test]
    fn rollback_reclaims_pool_appends() {
        let (mut c, g1, _) = and_or();
        let a = c.inputs()[0];
        let b = c.inputs()[1];
        let len0 = c.fanin_pool_len();
        let flat0 = c.fanin_spans_flat();
        let cp = c.begin_edit();
        c.rewire(g1, GateKind::Nand, vec![a, b]).unwrap();
        c.rewire(g1, GateKind::Buf, vec![a]).unwrap();
        let g = c.add_gate(GateKind::Xor, vec![a, b]).unwrap();
        c.add_output(g, "z");
        assert!(c.fanin_pool_len() > len0);
        c.rollback_to(cp);
        assert_eq!(c.fanin_pool_len(), len0, "rollback unwinds every pool append");
        assert_eq!(c.fanin_spans_flat(), flat0, "layout flags restored");
    }

    #[test]
    fn version_bumps_on_every_mutation() {
        let (mut c, g1, _) = and_or();
        let a = c.inputs()[0];
        let v0 = c.version();
        c.rewire(g1, GateKind::Buf, vec![a]).unwrap();
        let v1 = c.version();
        assert!(v1 > v0);
        let cp = c.begin_edit();
        c.set_node_name(g1, "renamed");
        c.rollback_to(cp);
        assert!(c.version() > v1, "rollback also bumps the version");
    }

    #[test]
    fn derived_snapshot_reused_until_mutation() {
        let (mut c, g1, _) = and_or();
        let s1 = c.derived(|c| c.len());
        let s2 = c.derived(|_| unreachable!("cache hit expected"));
        assert!(Arc::ptr_eq(&s1, &s2));
        let a = c.inputs()[0];
        c.rewire(g1, GateKind::Buf, vec![a]).unwrap();
        let s3 = c.derived(|c| c.len());
        assert!(!Arc::ptr_eq(&s1, &s3));
    }

    #[test]
    fn clone_equality_ignores_pool_layout() {
        let (mut c, g1, _) = and_or();
        let a = c.inputs()[0];
        let b = c.inputs()[1];
        // Fragment the pool, then compare against a compact clone route.
        c.rewire(g1, GateKind::Nand, vec![a, b]).unwrap();
        let mut compact = c.clone();
        compact.sweep();
        // Same structure, different pool layout (sweep keeps all nodes
        // here: everything is live).
        assert_eq!(c, compact);
    }
}
