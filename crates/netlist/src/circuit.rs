use crate::journal::{Journal, UndoOp};
use crate::views::CircuitViews;
use crate::{GateKind, NetlistError};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a node (line) in a [`Circuit`].
///
/// Node ids are dense indices; they remain stable under edits and are only
/// compacted by [`Circuit::sweep`], which returns a [`NodeMap`] describing
/// the renumbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a raw index (no validation; out-of-range ids
    /// are rejected by circuit methods that receive them).
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A single node of a [`Circuit`]: a primary input, a constant or a gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    pub(crate) kind: GateKind,
    pub(crate) fanins: Vec<NodeId>,
    pub(crate) name: Option<String>,
}

impl Node {
    /// The node kind.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The fanin lines of the node (empty for inputs and constants).
    pub fn fanins(&self) -> &[NodeId] {
        &self.fanins
    }

    /// Optional user-facing name (always present for primary inputs).
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }
}

/// Renumbering map returned by [`Circuit::sweep`]: `map[old.index()]` is the
/// new id, or `None` if the node was removed.
#[derive(Debug, Clone, Default)]
pub struct NodeMap {
    map: Vec<Option<NodeId>>,
}

impl NodeMap {
    /// Translates an old id; `None` if the node was removed.
    pub fn get(&self, old: NodeId) -> Option<NodeId> {
        self.map.get(old.index()).copied().flatten()
    }
}

/// A combinational gate-level circuit.
///
/// The circuit is a DAG of [`Node`]s. Primary outputs are references to
/// nodes (a node may drive several outputs). Fanout branches are implicit:
/// a node with several consumers has one branch per (consumer, pin).
///
/// # Examples
///
/// ```
/// use sft_netlist::{Circuit, GateKind};
///
/// // y = (a AND b) OR c
/// let mut c = Circuit::new("ex");
/// let a = c.add_input("a");
/// let b = c.add_input("b");
/// let ci = c.add_input("c");
/// let g1 = c.add_gate(GateKind::And, vec![a, b])?;
/// let g2 = c.add_gate(GateKind::Or, vec![g1, ci])?;
/// c.add_output(g2, "y");
/// assert_eq!(c.eval_assignment(&[false, true, true]), vec![true]);
/// # Ok::<(), sft_netlist::NetlistError>(())
/// ```
///
/// # Transactions and views
///
/// Structural mutation can be wrapped in an edit transaction
/// ([`begin_edit`](Self::begin_edit) / [`commit`](Self::commit) /
/// [`rollback_to`](Self::rollback_to)) for O(#edits) rollback, and the
/// circuit can maintain incremental derived views
/// ([`enable_views`](Self::enable_views)) instead of rebuilding fanout
/// tables, levels and path labels per call. Neither participates in
/// [`Clone`] or equality: a clone starts with an empty journal and no
/// views, and two circuits compare equal on structure alone.
#[derive(Debug)]
pub struct Circuit {
    pub(crate) name: String,
    pub(crate) nodes: Vec<Node>,
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) outputs: Vec<NodeId>,
    pub(crate) output_names: Vec<Option<String>>,
    pub(crate) journal: Journal,
    pub(crate) views: Option<Box<CircuitViews>>,
}

impl Clone for Circuit {
    fn clone(&self) -> Self {
        Circuit {
            name: self.name.clone(),
            nodes: self.nodes.clone(),
            inputs: self.inputs.clone(),
            outputs: self.outputs.clone(),
            output_names: self.output_names.clone(),
            journal: Journal::default(),
            views: None,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.name.clone_from(&source.name);
        self.nodes.clone_from(&source.nodes);
        self.inputs.clone_from(&source.inputs);
        self.outputs.clone_from(&source.outputs);
        self.output_names.clone_from(&source.output_names);
        self.journal = Journal::default();
        self.views = None;
    }
}

impl PartialEq for Circuit {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.nodes == other.nodes
            && self.inputs == other.inputs
            && self.outputs == other.outputs
            && self.output_names == other.output_names
    }
}

impl Eq for Circuit {}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new(name: impl Into<String>) -> Self {
        Circuit {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            output_names: Vec::new(),
            journal: Journal::default(),
            views: None,
        }
    }

    /// Creates an empty circuit with room for `nodes` nodes, so generators
    /// and parsers building 10K–1M-gate circuits do not re-grow the node
    /// arena logarithmically many times.
    pub fn with_capacity(name: impl Into<String>, nodes: usize) -> Self {
        let mut c = Circuit::new(name);
        c.nodes.reserve(nodes);
        c
    }

    /// Reserves capacity for at least `additional` more nodes.
    pub fn reserve(&mut self, additional: usize) {
        self.nodes.reserve(additional);
    }

    /// The circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        let old = std::mem::replace(&mut self.name, name.into());
        self.journal.record(UndoOp::CircuitName { name: old });
    }

    /// Adds a primary input and returns its id.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: GateKind::Input,
            fanins: Vec::new(),
            name: Some(name.into()),
        });
        self.inputs.push(id);
        self.journal.record(UndoOp::PopNode { was_input: true });
        if let Some(v) = &mut self.views {
            v.on_add_node(id, &self.nodes[id.index()]);
        }
        id
    }

    /// Adds a constant node and returns its id.
    pub fn add_const(&mut self, value: bool) -> NodeId {
        let kind = if value { GateKind::Const1 } else { GateKind::Const0 };
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { kind, fanins: Vec::new(), name: None });
        self.journal.record(UndoOp::PopNode { was_input: false });
        if let Some(v) = &mut self.views {
            v.on_add_node(id, &self.nodes[id.index()]);
        }
        id
    }

    /// Adds a gate and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Arity`] if the fanin count is invalid for the
    /// kind, [`NetlistError::NotAGate`] if `kind` is
    /// [`GateKind::Input`], and [`NetlistError::NodeOutOfRange`] if a fanin
    /// id does not exist yet.
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        fanins: Vec<NodeId>,
    ) -> Result<NodeId, NetlistError> {
        if kind == GateKind::Input {
            return Err(NetlistError::NotAGate(NodeId(self.nodes.len() as u32)));
        }
        if !kind.accepts_arity(fanins.len()) {
            return Err(NetlistError::Arity { kind: kind.name(), got: fanins.len() });
        }
        for &f in &fanins {
            if f.index() >= self.nodes.len() {
                return Err(NetlistError::NodeOutOfRange(f));
            }
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { kind, fanins, name: None });
        self.journal.record(UndoOp::PopNode { was_input: false });
        if let Some(v) = &mut self.views {
            v.on_add_node(id, &self.nodes[id.index()]);
        }
        Ok(id)
    }

    /// Adds a named gate.
    ///
    /// # Errors
    ///
    /// Same as [`add_gate`](Self::add_gate).
    pub fn add_named_gate(
        &mut self,
        kind: GateKind,
        fanins: Vec<NodeId>,
        name: impl Into<String>,
    ) -> Result<NodeId, NetlistError> {
        let id = self.add_gate(kind, fanins)?;
        self.nodes[id.index()].name = Some(name.into());
        Ok(id)
    }

    /// Registers `node` as a primary output (a node may drive several
    /// outputs).
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist.
    pub fn add_output(&mut self, node: NodeId, name: impl Into<String>) {
        assert!(node.index() < self.nodes.len(), "output node out of range");
        self.outputs.push(node);
        self.output_names.push(Some(name.into()));
        self.journal.record(UndoOp::PopOutput);
        if let Some(v) = &mut self.views {
            v.on_add_output(node);
        }
    }

    /// Number of nodes (lines) in the circuit, including dead ones.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the circuit has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterator over `(id, node)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i as u32), n))
    }

    /// The primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// The primary outputs, in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// The name of output slot `i`, if any.
    pub fn output_name(&self, i: usize) -> Option<&str> {
        self.output_names.get(i).and_then(|n| n.as_deref())
    }

    /// Sets the name of a node (useful after rewiring).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_node_name(&mut self, id: NodeId, name: impl Into<String>) {
        let old = self.nodes[id.index()].name.replace(name.into());
        self.journal.record(UndoOp::NodeName { id, name: old });
    }

    /// Redefines node `id` as a gate of `kind` with `fanins`.
    ///
    /// This is the primitive used by resynthesis: the node keeps its id, so
    /// all consumers automatically see the new function.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotAGate`] if `id` is a primary input or
    /// `kind` is [`GateKind::Input`]; [`NetlistError::Arity`] or
    /// [`NetlistError::NodeOutOfRange`] on malformed fanins; and
    /// [`NetlistError::Cycle`] if the edit would create a combinational
    /// cycle (i.e. `id` is in the transitive fanin of one of the new
    /// fanins).
    pub fn rewire(
        &mut self,
        id: NodeId,
        kind: GateKind,
        fanins: Vec<NodeId>,
    ) -> Result<(), NetlistError> {
        if id.index() >= self.nodes.len() {
            return Err(NetlistError::NodeOutOfRange(id));
        }
        if self.nodes[id.index()].kind == GateKind::Input || kind == GateKind::Input {
            return Err(NetlistError::NotAGate(id));
        }
        if !kind.accepts_arity(fanins.len()) {
            return Err(NetlistError::Arity { kind: kind.name(), got: fanins.len() });
        }
        for &f in &fanins {
            if f.index() >= self.nodes.len() {
                return Err(NetlistError::NodeOutOfRange(f));
            }
        }
        if self.reaches(id, &fanins) {
            return Err(NetlistError::Cycle(id));
        }
        let node = &mut self.nodes[id.index()];
        let old_kind = node.kind;
        node.kind = kind;
        let old_fanins = std::mem::replace(&mut node.fanins, fanins);
        if let Some(v) = &mut self.views {
            v.on_rewire(id, &old_fanins, self.nodes[id.index()].fanins());
        }
        self.journal.record(UndoOp::Rewire { id, kind: old_kind, fanins: old_fanins });
        Ok(())
    }

    /// Whether `target` is reachable from any of `from` by walking fanins
    /// (i.e. `target` is in the transitive fanin closure of `from`,
    /// including `from` itself).
    pub fn reaches(&self, target: NodeId, from: &[NodeId]) -> bool {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = from.to_vec();
        while let Some(n) = stack.pop() {
            if n == target {
                return true;
            }
            if std::mem::replace(&mut seen[n.index()], true) {
                continue;
            }
            stack.extend_from_slice(&self.nodes[n.index()].fanins);
        }
        false
    }

    /// A topological order of all nodes (fanins before fanouts).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cyclic`] if the circuit contains a cycle.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, NetlistError> {
        let n = self.nodes.len();
        let mut indegree = vec![0u32; n];
        let mut fanouts: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            indegree[i] = node.fanins.len() as u32;
            for f in &node.fanins {
                fanouts[f.index()].push(i as u32);
            }
        }
        let mut order = Vec::with_capacity(n);
        let mut queue: Vec<u32> = (0..n as u32).filter(|&i| indegree[i as usize] == 0).collect();
        while let Some(i) = queue.pop() {
            order.push(NodeId(i));
            for &o in &fanouts[i as usize] {
                indegree[o as usize] -= 1;
                if indegree[o as usize] == 0 {
                    queue.push(o);
                }
            }
        }
        if order.len() != n {
            return Err(NetlistError::Cyclic);
        }
        Ok(order)
    }

    /// Logic level of every node: inputs and constants are level 0, a gate
    /// is one more than its deepest fanin.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cyclic`] if the circuit contains a cycle.
    pub fn levels(&self) -> Result<Vec<u32>, NetlistError> {
        let order = self.topo_order()?;
        let mut level = vec![0u32; self.nodes.len()];
        for id in order {
            let node = &self.nodes[id.index()];
            if node.kind.is_gate() {
                level[id.index()] =
                    1 + node.fanins.iter().map(|f| level[f.index()]).max().unwrap_or(0);
            }
        }
        Ok(level)
    }

    /// The paper's *BFS order* of lines: nodes sorted by level (inputs
    /// first), ties broken by id. Procedures 2 and 3 traverse this order in
    /// reverse.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cyclic`] if the circuit contains a cycle.
    pub fn bfs_order(&self) -> Result<Vec<NodeId>, NetlistError> {
        let level = self.levels()?;
        let mut ids: Vec<NodeId> = (0..self.nodes.len() as u32).map(NodeId).collect();
        ids.sort_by_key(|id| (level[id.index()], id.0));
        Ok(ids)
    }

    /// Fanout table: for every node, the list of `(consumer, pin)` pairs.
    /// Primary-output references are not included.
    pub fn fanout_table(&self) -> Vec<Vec<(NodeId, usize)>> {
        let mut t: Vec<Vec<(NodeId, usize)>> = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for (pin, f) in node.fanins.iter().enumerate() {
                t[f.index()].push((NodeId(i as u32), pin));
            }
        }
        t
    }

    /// Number of consumers of each node, counting primary-output references.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut c = vec![0u32; self.nodes.len()];
        for node in &self.nodes {
            for f in &node.fanins {
                c[f.index()] += 1;
            }
        }
        for o in &self.outputs {
            c[o.index()] += 1;
        }
        c
    }

    /// Marks every node reachable from the primary outputs by walking
    /// fanins ("live" logic).
    pub fn live_mask(&self) -> Vec<bool> {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.outputs.clone();
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut live[n.index()], true) {
                continue;
            }
            stack.extend_from_slice(&self.nodes[n.index()].fanins);
        }
        live
    }

    /// Removes dead (unreachable-from-output) non-input nodes and compacts
    /// ids; returns the renumbering map. Primary inputs are always kept.
    ///
    /// # Panics
    ///
    /// Panics if an edit transaction is open (id compaction cannot be
    /// journalled; commit or roll back first).
    pub fn sweep(&mut self) -> NodeMap {
        assert!(!self.journal.recording(), "Circuit::sweep inside an open edit transaction");
        let mut keep = self.live_mask();
        for i in &self.inputs {
            keep[i.index()] = true;
        }
        let mut map = vec![None; self.nodes.len()];
        let mut new_nodes = Vec::with_capacity(self.nodes.len());
        for (i, node) in self.nodes.iter().enumerate() {
            if keep[i] {
                map[i] = Some(NodeId(new_nodes.len() as u32));
                new_nodes.push(node.clone());
            }
        }
        for node in &mut new_nodes {
            for f in &mut node.fanins {
                *f = map[f.index()].expect("live node fanins are live");
            }
        }
        self.nodes = new_nodes;
        for i in &mut self.inputs {
            *i = map[i.index()].expect("inputs kept");
        }
        for o in &mut self.outputs {
            *o = map[o.index()].expect("outputs are live");
        }
        if self.views.is_some() {
            self.rebuild_views();
        }
        NodeMap { map }
    }

    /// Full structural validation: arities, fanin ranges, acyclicity, and
    /// input/output list consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (i, node) in self.nodes.iter().enumerate() {
            if !node.kind.accepts_arity(node.fanins.len()) {
                return Err(NetlistError::Arity { kind: node.kind.name(), got: node.fanins.len() });
            }
            for &f in &node.fanins {
                if f.index() >= self.nodes.len() {
                    return Err(NetlistError::NodeOutOfRange(f));
                }
            }
            let is_input_kind = node.kind == GateKind::Input;
            let in_list = self.inputs.contains(&NodeId(i as u32));
            if is_input_kind != in_list {
                return Err(NetlistError::NotAGate(NodeId(i as u32)));
            }
        }
        for &o in &self.outputs {
            if o.index() >= self.nodes.len() {
                return Err(NetlistError::NodeOutOfRange(o));
            }
        }
        self.topo_order()?;
        Ok(())
    }

    /// Evaluates the circuit on a single assignment (one bool per primary
    /// input, in input order); returns one bool per primary output.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` differs from the number of inputs or the
    /// circuit is cyclic.
    pub fn eval_assignment(&self, assignment: &[bool]) -> Vec<bool> {
        assert_eq!(assignment.len(), self.inputs.len(), "assignment length mismatch");
        let order = self.topo_order().expect("combinational circuit");
        let mut values = vec![false; self.nodes.len()];
        let input_pos: HashMap<NodeId, usize> =
            self.inputs.iter().copied().enumerate().map(|(i, id)| (id, i)).collect();
        let mut buf = Vec::new();
        for id in order {
            let node = &self.nodes[id.index()];
            values[id.index()] = match node.kind {
                GateKind::Input => assignment[input_pos[&id]],
                kind => {
                    buf.clear();
                    buf.extend(node.fanins.iter().map(|f| values[f.index()]));
                    kind.eval(&buf)
                }
            };
        }
        self.outputs.iter().map(|o| values[o.index()]).collect()
    }

    /// A fresh unique name based on `prefix` not colliding with existing
    /// node names.
    pub fn fresh_name(&self, prefix: &str) -> String {
        let mut k = self.nodes.len();
        loop {
            let candidate = format!("{prefix}{k}");
            if self.nodes.iter().all(|n| n.name.as_deref() != Some(candidate.as_str())) {
                return candidate;
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and_or() -> (Circuit, NodeId, NodeId) {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let x = c.add_input("x");
        let g1 = c.add_gate(GateKind::And, vec![a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Or, vec![g1, x]).unwrap();
        c.add_output(g2, "y");
        (c, g1, g2)
    }

    #[test]
    fn build_and_eval() {
        let (c, _, _) = and_or();
        assert_eq!(c.eval_assignment(&[true, true, false]), vec![true]);
        assert_eq!(c.eval_assignment(&[true, false, false]), vec![false]);
        assert_eq!(c.eval_assignment(&[false, false, true]), vec![true]);
        c.validate().unwrap();
    }

    #[test]
    fn arity_checked() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        assert!(matches!(c.add_gate(GateKind::Not, vec![a, a]), Err(NetlistError::Arity { .. })));
        assert!(matches!(c.add_gate(GateKind::And, vec![]), Err(NetlistError::Arity { .. })));
        assert!(matches!(
            c.add_gate(GateKind::And, vec![NodeId(99)]),
            Err(NetlistError::NodeOutOfRange(_))
        ));
        assert!(matches!(c.add_gate(GateKind::Input, vec![]), Err(NetlistError::NotAGate(_))));
    }

    #[test]
    fn rewire_rejects_cycles() {
        let (mut c, g1, g2) = and_or();
        // g1 := BUF(g2) would create a cycle g1 -> g2 -> g1.
        assert!(matches!(c.rewire(g1, GateKind::Buf, vec![g2]), Err(NetlistError::Cycle(_))));
        // Self-loop rejected too.
        assert!(matches!(c.rewire(g1, GateKind::Buf, vec![g1]), Err(NetlistError::Cycle(_))));
        // A legal rewire works and consumers see it.
        let a = c.inputs()[0];
        c.rewire(g1, GateKind::Buf, vec![a]).unwrap();
        assert_eq!(c.eval_assignment(&[true, false, false]), vec![true]);
    }

    #[test]
    fn rewire_rejects_inputs() {
        let (mut c, _, _) = and_or();
        let a = c.inputs()[0];
        assert!(matches!(c.rewire(a, GateKind::Buf, vec![a]), Err(NetlistError::NotAGate(_))));
    }

    #[test]
    fn topo_and_levels() {
        let (c, g1, g2) = and_or();
        let order = c.topo_order().unwrap();
        let pos: Vec<usize> =
            (0..c.len()).map(|i| order.iter().position(|n| n.index() == i).unwrap()).collect();
        assert!(pos[g1.index()] < pos[g2.index()]);
        let levels = c.levels().unwrap();
        assert_eq!(levels[g1.index()], 1);
        assert_eq!(levels[g2.index()], 2);
        assert_eq!(levels[c.inputs()[0].index()], 0);
    }

    #[test]
    fn bfs_order_sorted_by_level() {
        let (c, _, _) = and_or();
        let order = c.bfs_order().unwrap();
        let levels = c.levels().unwrap();
        for w in order.windows(2) {
            assert!(levels[w[0].index()] <= levels[w[1].index()]);
        }
    }

    #[test]
    fn fanout_accounting() {
        let (c, g1, g2) = and_or();
        let t = c.fanout_table();
        assert_eq!(t[g1.index()], vec![(g2, 0)]);
        let counts = c.fanout_counts();
        assert_eq!(counts[g2.index()], 1); // the PO reference
        assert_eq!(counts[g1.index()], 1);
    }

    #[test]
    fn sweep_removes_dead_logic() {
        let (mut c, _, _) = and_or();
        let a = c.inputs()[0];
        let dead = c.add_gate(GateKind::Not, vec![a]).unwrap();
        assert_eq!(c.len(), 6);
        let map = c.sweep();
        assert_eq!(c.len(), 5);
        assert!(map.get(dead).is_none());
        c.validate().unwrap();
        assert_eq!(c.eval_assignment(&[true, true, false]), vec![true]);
    }

    #[test]
    fn sweep_keeps_unused_inputs() {
        let mut c = Circuit::new("t");
        let _unused = c.add_input("u");
        let a = c.add_input("a");
        let g = c.add_gate(GateKind::Buf, vec![a]).unwrap();
        c.add_output(g, "y");
        c.sweep();
        assert_eq!(c.inputs().len(), 2);
        c.validate().unwrap();
    }

    #[test]
    fn fresh_name_avoids_collisions() {
        let mut c = Circuit::new("t");
        c.add_input("w1");
        let n = c.fresh_name("w");
        assert_ne!(n, "w1");
    }
}
