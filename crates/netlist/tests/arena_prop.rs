//! Arena-layout property tests: the span pool's physical invariants under
//! journaled edits and sweep compaction.
//!
//! `journal_rollback.rs` checks *logical* equality (rollback restores an
//! equal circuit); these tests pin the *physical* arena contract on top:
//! rollback reclaims every transactional pool append (the pool returns to
//! its checkpoint length exactly, not just to equal contents), committed
//! rewires strand garbage that only `sweep` reclaims, and the `NodeMap`
//! returned by sweep translates live structure faithfully.

use proptest::prelude::*;
use sft_netlist::{Circuit, GateKind, NodeId};

fn wide_kind(sel: usize) -> GateKind {
    match sel % 6 {
        0 => GateKind::And,
        1 => GateKind::Or,
        2 => GateKind::Nand,
        3 => GateKind::Nor,
        4 => GateKind::Xor,
        _ => GateKind::Xnor,
    }
}

fn pick(seed: u64, k: usize, bound: usize) -> NodeId {
    NodeId::from_index(((seed >> (16 * (k % 4))) % bound as u64) as usize)
}

/// Append-only random DAG (same raw-material scheme as journal_rollback).
fn build_dag(n_inputs: usize, gates: &[(usize, usize, u64)], out_picks: &[u64]) -> Circuit {
    let mut c = Circuit::new("arena");
    for i in 0..n_inputs {
        c.add_input(format!("i{i}"));
    }
    for (gi, &(kind_sel, arity, seed)) in gates.iter().enumerate() {
        let len = c.len();
        let g = if kind_sel % 8 >= 6 {
            let unary = if kind_sel % 2 == 0 { GateKind::Buf } else { GateKind::Not };
            c.add_gate(unary, vec![pick(seed, 0, len)])
        } else {
            let fanins = (0..arity).map(|k| pick(seed, k, len)).collect();
            c.add_gate(wide_kind(kind_sel), fanins)
        }
        .expect("append-only construction cannot cycle");
        if gi % 4 == 0 {
            c.set_node_name(g, format!("g{gi}"));
        }
    }
    for (k, &p) in out_picks.iter().enumerate() {
        c.add_output(NodeId::from_index((p % c.len() as u64) as usize), format!("o{k}"));
    }
    c
}

/// Rewires sampled gate targets to strictly-smaller fanins (acyclic by
/// construction). Returns how many rewires actually ran.
fn apply_rewires(c: &mut Circuit, edits: &[(u64, u64)]) -> usize {
    let mut applied = 0;
    for &(t_seed, f_seed) in edits {
        let t = (t_seed % c.len() as u64) as usize;
        let target = NodeId::from_index(t);
        if c.node(target).kind() == GateKind::Input || t == 0 {
            continue;
        }
        let arity = 1 + (f_seed % 3) as usize;
        let fanins: Vec<_> = (0..arity).map(|k| pick(f_seed, k, t)).collect();
        c.rewire(target, wide_kind(f_seed as usize), fanins)
            .expect("strictly-smaller fanin ids cannot cycle");
        applied += 1;
    }
    applied
}

/// Packs a seed into one input assignment per primary input.
fn assignment(c: &Circuit, seed: u64) -> Vec<bool> {
    (0..c.inputs().len()).map(|i| seed >> (i % 64) & 1 == 1).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rollback returns the pool to its checkpoint length exactly: every
    /// transactional append sat at the pool tail when undone, so the
    /// journal reclaims the storage physically, not just logically.
    #[test]
    fn rollback_reclaims_every_pool_append(
        n_inputs in 1usize..5,
        gates in proptest::collection::vec((0usize..8, 1usize..4, any::<u64>()), 2..25),
        out_picks in proptest::collection::vec(any::<u64>(), 1..4),
        edits in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..30),
    ) {
        let mut c = build_dag(n_inputs, &gates, &out_picks);
        let before = c.clone();
        let pool_before = c.fanin_pool_len();
        let live_before = c.fanin_count();
        let was_flat = c.fanin_spans_flat();

        let cp = c.begin_edit();
        let applied = apply_rewires(&mut c, &edits);
        if applied > 0 {
            prop_assert!(!c.fanin_spans_flat(), "rewires must fragment the pool");
        }
        c.rollback_to(cp);

        prop_assert_eq!(c.fanin_pool_len(), pool_before, "pool appends not reclaimed");
        prop_assert_eq!(c.fanin_count(), live_before);
        prop_assert_eq!(c.fanin_spans_flat(), was_flat, "layout flag not restored");
        prop_assert!(c == before);
    }

    /// Committed rewires strand exactly their old spans as garbage; sweep
    /// reclaims all of it, restores the flat layout, and its `NodeMap`
    /// translates every surviving node to the same kind, translated
    /// fanins and name.
    #[test]
    fn sweep_compacts_pool_and_node_map_translates(
        n_inputs in 1usize..5,
        gates in proptest::collection::vec((0usize..8, 1usize..4, any::<u64>()), 2..25),
        out_picks in proptest::collection::vec(any::<u64>(), 1..4),
        edits in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..30),
        eval_seed in any::<u64>(),
    ) {
        let mut c = build_dag(n_inputs, &gates, &out_picks);
        apply_rewires(&mut c, &edits);
        let pre = c.clone();
        let inputs = assignment(&c, eval_seed);
        let outputs_before = c.eval_assignment(&inputs);

        let map = c.sweep();

        prop_assert!(c.fanin_spans_flat(), "sweep must restore the flat layout");
        prop_assert_eq!(c.fanin_pool_len(), c.fanin_count(), "sweep left pool garbage");
        // Functional behaviour survives the renumbering.
        prop_assert_eq!(c.eval_assignment(&inputs), outputs_before);
        // Every surviving node translates faithfully.
        let mut survivors = 0;
        for (old_id, old_node) in pre.iter() {
            let Some(new_id) = map.get(old_id) else { continue };
            survivors += 1;
            let new_node = c.node(new_id);
            prop_assert_eq!(old_node.kind(), new_node.kind());
            prop_assert_eq!(old_node.name(), new_node.name());
            let translated: Vec<_> = old_node
                .fanins()
                .iter()
                .map(|&f| map.get(f).expect("live fanin of a live node survives"))
                .collect();
            prop_assert_eq!(&translated[..], new_node.fanins());
        }
        prop_assert_eq!(survivors, c.len(), "NodeMap must cover every new node");
        // Outputs translate too.
        let translated_outputs: Vec<_> =
            pre.outputs().iter().map(|&o| map.get(o).expect("output survives")).collect();
        prop_assert_eq!(&translated_outputs[..], c.outputs());
    }

    /// Nested checkpoints unwind the pool tail innermost-first: each level
    /// restores the exact pool length observed when it was opened.
    #[test]
    fn nested_checkpoints_restore_pool_lengths(
        n_inputs in 1usize..5,
        gates in proptest::collection::vec((0usize..8, 1usize..4, any::<u64>()), 2..20),
        out_picks in proptest::collection::vec(any::<u64>(), 1..4),
        edits in proptest::collection::vec((any::<u64>(), any::<u64>()), 2..24),
    ) {
        let mut c = build_dag(n_inputs, &gates, &out_picks);
        let (first, second) = edits.split_at(edits.len() / 2);

        let outer = c.begin_edit();
        let pool_outer = c.fanin_pool_len();
        apply_rewires(&mut c, first);
        let mid = c.clone();
        let inner = c.begin_edit();
        let pool_inner = c.fanin_pool_len();
        apply_rewires(&mut c, second);

        c.rollback_to(inner);
        prop_assert_eq!(c.fanin_pool_len(), pool_inner);
        prop_assert!(c == mid);
        c.rollback_to(outer);
        prop_assert_eq!(c.fanin_pool_len(), pool_outer);
    }
}
