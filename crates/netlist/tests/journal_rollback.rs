//! Journal-vs-clone property tests: random edit sequences applied to random
//! DAGs inside an edit transaction must roll back to a state bit-identical
//! to a pre-edit `clone()`, and the incrementally maintained views must
//! agree with from-scratch rebuilds at every stage (mid-edit, after
//! rollback, after commit).

use proptest::prelude::*;
use sft_netlist::{Circuit, GateKind, NodeId};

/// Maps a selector to a gate kind with arity `>= 1` semantics.
fn wide_kind(sel: usize) -> GateKind {
    match sel % 6 {
        0 => GateKind::And,
        1 => GateKind::Or,
        2 => GateKind::Nand,
        3 => GateKind::Nor,
        4 => GateKind::Xor,
        _ => GateKind::Xnor,
    }
}

/// Picks the `k`-th fanin id below `bound` out of a packed seed.
fn pick(seed: u64, k: usize, bound: usize) -> NodeId {
    NodeId::from_index(((seed >> (16 * (k % 4))) % bound as u64) as usize)
}

/// Deterministically builds a DAG from sampled raw material: `n_inputs`
/// primary inputs, both constants, one gate per `(kind, arity, seed)`
/// triple (fanins drawn from already-present nodes, so the build is
/// acyclic by construction) and one primary output per pick.
fn build_dag(n_inputs: usize, gates: &[(usize, usize, u64)], out_picks: &[u64]) -> Circuit {
    let mut c = Circuit::new("prop");
    for i in 0..n_inputs {
        c.add_input(format!("i{i}"));
    }
    c.add_const(false);
    c.add_const(true);
    for (gi, &(kind_sel, arity, seed)) in gates.iter().enumerate() {
        let len = c.len();
        let g = if kind_sel % 8 >= 6 {
            let unary = if kind_sel % 2 == 0 { GateKind::Buf } else { GateKind::Not };
            c.add_gate(unary, vec![pick(seed, 0, len)])
        } else {
            let fanins = (0..arity).map(|k| pick(seed, k, len)).collect();
            c.add_gate(wide_kind(kind_sel), fanins)
        }
        .expect("append-only construction cannot cycle");
        if gi % 3 == 0 {
            c.set_node_name(g, format!("g{gi}"));
        }
    }
    for (k, &p) in out_picks.iter().enumerate() {
        c.add_output(NodeId::from_index((p % c.len() as u64) as usize), format!("o{k}"));
    }
    c
}

/// Applies a sampled edit sequence: appends (inputs, constants, gates,
/// output registrations), in-place rewires (fanins restricted to smaller
/// ids, so edits stay acyclic) and renames. Deterministic in the circuit
/// state, so replaying the same ops on an equal circuit produces an equal
/// circuit.
fn apply_edits(c: &mut Circuit, ops: &[(usize, u64, u64)]) {
    for (i, &(sel, a, b)) in ops.iter().enumerate() {
        let len = c.len();
        match sel % 8 {
            0 => {
                c.add_input(format!("pi{i}"));
            }
            1 => {
                c.add_const(a % 2 == 1);
            }
            2 => {
                let arity = 1 + (a % 3) as usize;
                let fanins = (0..arity).map(|k| pick(b, k, len)).collect();
                c.add_gate(wide_kind(a as usize), fanins).expect("appended fanins exist");
            }
            3 => {
                c.add_output(NodeId::from_index((a % len as u64) as usize), format!("po{i}"));
            }
            4 | 5 => {
                let t = (a % len as u64) as usize;
                let target = NodeId::from_index(t);
                if c.node(target).kind() == GateKind::Input {
                    continue;
                }
                if t == 0 || b % 5 == 0 {
                    let kind = if b % 2 == 0 { GateKind::Const0 } else { GateKind::Const1 };
                    c.rewire(target, kind, Vec::new()).expect("constants never cycle");
                } else {
                    let arity = 1 + (b % 3) as usize;
                    let fanins = (0..arity).map(|k| pick(b, k, t)).collect();
                    c.rewire(target, wide_kind(b as usize), fanins)
                        .expect("strictly-smaller fanin ids cannot cycle");
                }
            }
            6 => {
                c.set_node_name(NodeId::from_index((a % len as u64) as usize), format!("r{i}"));
            }
            _ => {
                c.set_name(format!("edited{i}"));
            }
        }
    }
}

/// Every maintained view must agree with the from-scratch derivation on the
/// current structure: flat fanout adjacency, fanout counts, PO references,
/// levels, path labels and the BFS order.
fn assert_views_match_rebuild(c: &mut Circuit) {
    c.refresh_views();
    let v = c.views().expect("views enabled");
    let table = c.fanout_table();
    let counts = c.fanout_counts();
    for i in 0..c.len() {
        let id = NodeId::from_index(i);
        assert_eq!(v.fanout(id), &table[i][..], "fanout view diverged at n{i}");
        assert_eq!(v.fanout_count(id), counts[i], "fanout count diverged at n{i}");
        let po = c.outputs().iter().filter(|&&o| o == id).count() as u32;
        assert_eq!(v.po_refs(id), po, "po refs diverged at n{i}");
        assert_eq!(v.drives_output(id), po > 0);
    }
    let idoms = c.immediate_dominators();
    for (i, want) in idoms.iter().enumerate() {
        assert_eq!(v.idom(NodeId::from_index(i)), *want, "idom diverged at n{i}");
    }
    assert_eq!(v.levels(), &c.levels().expect("acyclic")[..], "levels diverged");
    assert_eq!(v.path_labels_exact(), &c.path_labels_exact()[..], "path labels diverged");
    assert_eq!(v.bfs_order(), c.bfs_order().expect("acyclic"), "bfs order diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rolling an edit transaction back via the journal restores a state
    /// bit-identical to a pre-edit clone — nodes, names, outputs and all
    /// maintained views.
    #[test]
    fn rollback_matches_pre_edit_clone(
        n_inputs in 1usize..5,
        gates in proptest::collection::vec((0usize..8, 1usize..4, any::<u64>()), 1..25),
        out_picks in proptest::collection::vec(any::<u64>(), 1..5),
        ops in proptest::collection::vec((0usize..8, any::<u64>(), any::<u64>()), 1..40),
    ) {
        let mut c = build_dag(n_inputs, &gates, &out_picks);
        c.enable_views();
        let before = c.clone();
        let cp = c.begin_edit();
        apply_edits(&mut c, &ops);
        // Mid-edit the patched views must already agree with rebuilds.
        assert_views_match_rebuild(&mut c);
        c.rollback_to(cp);
        prop_assert!(!c.in_transaction());
        prop_assert!(c == before, "rollback did not restore the pre-edit circuit");
        assert_views_match_rebuild(&mut c);
    }

    /// Nested transactions resolve innermost-first: rolling back the inner
    /// checkpoint restores the mid-point, rolling back the outer one
    /// restores the start.
    #[test]
    fn nested_rollback_restores_each_level(
        n_inputs in 1usize..5,
        gates in proptest::collection::vec((0usize..8, 1usize..4, any::<u64>()), 1..20),
        out_picks in proptest::collection::vec(any::<u64>(), 1..4),
        ops in proptest::collection::vec((0usize..8, any::<u64>(), any::<u64>()), 2..30),
    ) {
        let mut c = build_dag(n_inputs, &gates, &out_picks);
        c.enable_views();
        let before = c.clone();
        let (first, second) = ops.split_at(ops.len() / 2);
        let outer = c.begin_edit();
        apply_edits(&mut c, first);
        let mid = c.clone();
        let inner = c.begin_edit();
        apply_edits(&mut c, second);
        c.rollback_to(inner);
        prop_assert!(c.in_transaction());
        prop_assert!(c == mid, "inner rollback did not restore the mid-point");
        assert_views_match_rebuild(&mut c);
        c.rollback_to(outer);
        prop_assert!(!c.in_transaction());
        prop_assert!(c == before, "outer rollback did not restore the start");
        assert_views_match_rebuild(&mut c);
    }

    /// Committing a transaction leaves exactly the state that applying the
    /// same edits without any transaction (and without views) produces —
    /// the journal machinery is observationally free.
    #[test]
    fn commit_matches_untracked_application(
        n_inputs in 1usize..5,
        gates in proptest::collection::vec((0usize..8, 1usize..4, any::<u64>()), 1..20),
        out_picks in proptest::collection::vec(any::<u64>(), 1..4),
        ops in proptest::collection::vec((0usize..8, any::<u64>(), any::<u64>()), 1..30),
    ) {
        let base = build_dag(n_inputs, &gates, &out_picks);
        let mut tracked = base.clone();
        tracked.enable_views();
        let cp = tracked.begin_edit();
        apply_edits(&mut tracked, &ops);
        tracked.commit(cp);
        prop_assert!(!tracked.in_transaction());
        assert_views_match_rebuild(&mut tracked);

        let mut plain = base.clone();
        apply_edits(&mut plain, &ops);
        prop_assert!(tracked == plain, "journaled application diverged from plain application");
    }
}
