//! Adversarial inputs for the `.bench` parser: every malformed input must
//! come back as `Err(NetlistError::Parse { .. })` (or at least `Err`) and
//! must never panic, whatever the garbage.

use proptest::prelude::*;
use sft_netlist::bench_format::parse;
use sft_netlist::NetlistError;

/// Each malformed source must produce a parse error, never a panic, and the
/// reported line number must be within the source.
#[test]
fn malformed_sources_all_rejected_with_line_numbers() {
    let cases: &[(&str, &str)] = &[
        ("self_cycle", "INPUT(a)\nOUTPUT(y)\ny = BUF(y)\n"),
        ("two_gate_cycle", "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = NOT(y)\n"),
        ("long_cycle", "INPUT(a)\nOUTPUT(y)\ny = AND(a, u)\nu = BUF(v)\nv = BUF(w)\nw = BUF(y)\n"),
        ("duplicate_input", "INPUT(a)\nINPUT(a)\nOUTPUT(a)\n"),
        ("duplicate_gate", "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\ny = NOT(a)\n"),
        ("input_redefined_as_gate", "INPUT(a)\nOUTPUT(a)\na = NOT(a)\n"),
        ("undefined_fanin", "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n"),
        ("undefined_output", "INPUT(a)\nOUTPUT(nothing)\n"),
        ("absurd_not_fanin", "INPUT(a)\nOUTPUT(y)\ny = NOT(a, a, a, a, a, a, a, a)\n"),
        ("zero_fanin_and", "INPUT(a)\nOUTPUT(y)\ny = AND()\n"),
        ("const_with_args", "INPUT(a)\nOUTPUT(y)\ny = CONST1(a)\n"),
        ("truncated_input_decl", "INPUT(a\nOUTPUT(a)\n"),
        ("truncated_output_decl", "INPUT(a)\nOUTPUT(y\ny = BUF(a)\n"),
        ("truncated_gate_expr", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b\n"),
        ("unknown_gate", "INPUT(a)\nOUTPUT(y)\ny = FROBNICATE(a)\n"),
        ("dff_rejected", "INPUT(a)\nOUTPUT(y)\ny = DFF(a)\n"),
        ("bare_word_line", "INPUT(a)\nOUTPUT(a)\nhello world\n"),
        ("control_chars", "\u{1}\u{2}\u{3}\u{7f}\n"),
        ("null_bytes", "INPUT(a)\n\u{0}\u{0}\u{0}\n"),
        ("unicode_garbage", "INPUT(a)\nOUTPUT(a)\n\u{1f600} = AND(\u{30c4})\n"),
    ];
    for (label, src) in cases {
        match parse(src, *label) {
            Err(NetlistError::Parse { line, .. }) => {
                let total = src.lines().count();
                assert!((1..=total).contains(&line), "{label}: line {line} outside 1..={total}");
            }
            Err(_) => {}
            Ok(_) => panic!("{label}: malformed source accepted"),
        }
    }
}

/// A gate whose fanin list is enormous never blows the stack or goes
/// quadratic: lists up to [`MAX_PARSE_FANINS`] parse, anything wider is a
/// typed parse error (a parser bomb on a daemon-facing input path), and
/// both answers arrive fast.
#[test]
fn huge_fanin_lists_do_not_blow_up() {
    use sft_netlist::bench_format::MAX_PARSE_FANINS;
    // A maximally wide AND over one input is legal (multi-input gates take
    // n >= 1 fanins), so it must parse...
    let wide = format!(
        "INPUT(a)\nOUTPUT(y)\ny = AND({})\n",
        std::iter::repeat_n("a", MAX_PARSE_FANINS).collect::<Vec<_>>().join(", ")
    );
    let c = parse(&wide, "wide").expect("wide AND is legal");
    assert_eq!(c.eval_assignment(&[true]), vec![true]);
    // ...a 50k-ary one is over the bomb guard and must be a typed error...
    let bomb = format!(
        "INPUT(a)\nOUTPUT(y)\ny = AND({})\n",
        std::iter::repeat_n("a", 50_000).collect::<Vec<_>>().join(", ")
    );
    assert!(matches!(parse(&bomb, "bomb"), Err(NetlistError::Parse { line: 3, .. })));
    // ...while a wide list on a NOT must be an arity error, not a panic.
    let wide_not = format!(
        "INPUT(a)\nOUTPUT(y)\ny = NOT({})\n",
        std::iter::repeat_n("a", MAX_PARSE_FANINS).collect::<Vec<_>>().join(", ")
    );
    assert!(parse(&wide_not, "wide_not").is_err());
}

/// A deep but acyclic chain parses fine (the parser and validator must be
/// iterative, not recursive).
#[test]
fn deep_chains_parse_iteratively() {
    let mut src = String::from("INPUT(s0)\nOUTPUT(s20000)\n");
    for i in 0..20_000 {
        src.push_str(&format!("s{} = NOT(s{})\n", i + 1, i));
    }
    let c = parse(&src, "deep").expect("deep chain is valid");
    assert_eq!(c.eval_assignment(&[false]), vec![false]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary ASCII soup never panics the parser; it either parses (for
    /// the rare accidentally-valid soup) or errors.
    #[test]
    fn ascii_soup_never_panics(bytes in proptest::collection::vec(32u8..127, 0..300)) {
        let text = String::from_utf8(bytes).expect("printable ascii");
        let _ = parse(&text, "soup");
    }

    /// Structured soup: random lines assembled from format fragments, which
    /// hits the parser's deeper states (duplicate maps, rewiring, cycle
    /// checks) far more often than raw bytes do.
    #[test]
    fn fragment_soup_never_panics(
        picks in proptest::collection::vec((0usize..12, 0usize..4, 0usize..4), 0..30),
    ) {
        let names = ["a", "b", "y", "n1"];
        let mut text = String::new();
        for (shape, i, j) in picks {
            let x = names[i];
            let z = names[j];
            let line = match shape {
                0 => format!("INPUT({x})"),
                1 => format!("OUTPUT({x})"),
                2 => format!("{x} = AND({z}, {x})"),
                3 => format!("{x} = NOT({z})"),
                4 => format!("{x} = BUF({z}"),
                5 => format!("{x} = DFF({z})"),
                6 => format!("{x} = CONST1"),
                7 => format!("{x} = XOR({z}, {x}, {z})"),
                8 => format!("{x} ="),
                9 => format!("= AND({x})"),
                10 => format!("# comment {x}"),
                _ => String::new(),
            };
            text.push_str(&line);
            text.push('\n');
        }
        if let Ok(c) = parse(&text, "frag") {
            // Anything the parser accepts must be a valid circuit.
            c.validate().expect("accepted circuits validate");
        }
    }
}
