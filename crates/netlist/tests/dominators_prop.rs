//! Dominator property tests: the Cooper–Harvey–Kennedy pass
//! (`Circuit::immediate_dominators`) and the incrementally maintained view
//! (`CircuitViews::idom`) must both agree with a brute-force definition of
//! domination — `d` dominates `n` iff deleting `d` disconnects `n` from
//! every primary output — on random DAGs, including mid-edit, after journal
//! rollback and after commit.

use proptest::prelude::*;
use sft_netlist::{Circuit, GateKind, NodeId};

/// Brute-force immediate dominators straight from the definition. For each
/// candidate `d`, one reverse-topological reachability pass with `d`
/// deleted finds every node it dominates; the immediate dominator of `n`
/// is its dominator closest to `n` (minimum topological position — proper
/// dominators of a node form a chain).
fn brute_force_idoms(c: &Circuit) -> Vec<Option<NodeId>> {
    let n = c.len();
    let order = c.topo_order().expect("acyclic");
    let fanouts = c.fanout_table();
    let mut po = vec![false; n];
    for &o in c.outputs() {
        po[o.index()] = true;
    }
    let reaches = |banned: Option<NodeId>| -> Vec<bool> {
        let mut r = vec![false; n];
        for &id in order.iter().rev() {
            if Some(id) == banned {
                continue;
            }
            r[id.index()] =
                po[id.index()] || fanouts[id.index()].iter().any(|&(cns, _)| r[cns.index()]);
        }
        r
    };
    let base = reaches(None);
    let mut pos = vec![0usize; n];
    for (p, &id) in order.iter().enumerate() {
        pos[id.index()] = p;
    }
    let mut idom: Vec<Option<NodeId>> = vec![None; n];
    for d in (0..n).map(NodeId::from_index) {
        let r = reaches(Some(d));
        for x in (0..n).map(NodeId::from_index) {
            if x != d && base[x.index()] && !r[x.index()] {
                // d dominates x; keep the candidate nearest to x.
                if idom[x.index()].is_none_or(|cur| pos[d.index()] < pos[cur.index()]) {
                    idom[x.index()] = Some(d);
                }
            }
        }
    }
    idom
}

/// Asserts the CHK rebuild and (when views are enabled) the maintained view
/// both equal the brute-force oracle.
fn assert_idoms_match_brute_force(c: &mut Circuit) {
    let oracle = brute_force_idoms(c);
    let chk = c.immediate_dominators();
    assert_eq!(chk, oracle, "CHK dominators diverged from brute force");
    c.refresh_views();
    if let Some(v) = c.views() {
        for (i, want) in oracle.iter().enumerate() {
            let id = NodeId::from_index(i);
            assert_eq!(v.idom(id), *want, "maintained idom diverged at n{i}");
        }
    }
}

/// Maps a selector to a multi-input gate kind.
fn wide_kind(sel: usize) -> GateKind {
    match sel % 6 {
        0 => GateKind::And,
        1 => GateKind::Or,
        2 => GateKind::Nand,
        3 => GateKind::Nor,
        4 => GateKind::Xor,
        _ => GateKind::Xnor,
    }
}

/// Picks the `k`-th fanin id below `bound` out of a packed seed.
fn pick(seed: u64, k: usize, bound: usize) -> NodeId {
    NodeId::from_index(((seed >> (16 * (k % 4))) % bound as u64) as usize)
}

/// Deterministically builds a DAG from sampled raw material (same scheme as
/// the journal property tests: fanins always draw from already-present
/// nodes, so construction is acyclic).
fn build_dag(n_inputs: usize, gates: &[(usize, usize, u64)], out_picks: &[u64]) -> Circuit {
    let mut c = Circuit::new("domprop");
    for i in 0..n_inputs {
        c.add_input(format!("i{i}"));
    }
    for &(kind_sel, arity, seed) in gates {
        let len = c.len();
        if kind_sel % 8 >= 6 {
            let unary = if kind_sel % 2 == 0 { GateKind::Buf } else { GateKind::Not };
            c.add_gate(unary, vec![pick(seed, 0, len)])
        } else {
            let fanins = (0..arity).map(|k| pick(seed, k, len)).collect();
            c.add_gate(wide_kind(kind_sel), fanins)
        }
        .expect("append-only construction cannot cycle");
    }
    for (k, &p) in out_picks.iter().enumerate() {
        c.add_output(NodeId::from_index((p % c.len() as u64) as usize), format!("o{k}"));
    }
    c
}

/// Applies a sampled edit sequence (appends, rewires to smaller ids, output
/// registrations) — the mutation kinds that disturb the fanout graph.
fn apply_edits(c: &mut Circuit, ops: &[(usize, u64, u64)]) {
    for (i, &(sel, a, b)) in ops.iter().enumerate() {
        let len = c.len();
        match sel % 6 {
            0 => {
                c.add_input(format!("pi{i}"));
            }
            1 => {
                let arity = 1 + (a % 3) as usize;
                let fanins = (0..arity).map(|k| pick(b, k, len)).collect();
                c.add_gate(wide_kind(a as usize), fanins).expect("appended fanins exist");
            }
            2 => {
                c.add_output(NodeId::from_index((a % len as u64) as usize), format!("po{i}"));
            }
            _ => {
                let t = (a % len as u64) as usize;
                let target = NodeId::from_index(t);
                if c.node(target).kind() == GateKind::Input {
                    continue;
                }
                if t == 0 || b % 5 == 0 {
                    let kind = if b % 2 == 0 { GateKind::Const0 } else { GateKind::Const1 };
                    c.rewire(target, kind, Vec::new()).expect("constants never cycle");
                } else {
                    let arity = 1 + (b % 3) as usize;
                    let fanins = (0..arity).map(|k| pick(b, k, t)).collect();
                    c.rewire(target, wide_kind(b as usize), fanins)
                        .expect("strictly-smaller fanin ids cannot cycle");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On a freshly built random DAG, CHK and the maintained view agree
    /// with the delete-a-node brute force.
    #[test]
    fn dominators_match_brute_force_on_random_dags(
        n_inputs in 1usize..5,
        gates in proptest::collection::vec((0usize..8, 1usize..4, any::<u64>()), 1..30),
        out_picks in proptest::collection::vec(any::<u64>(), 1..5),
    ) {
        let mut c = build_dag(n_inputs, &gates, &out_picks);
        c.enable_views();
        assert_idoms_match_brute_force(&mut c);
    }

    /// Through a journaled edit transaction — mid-edit, after rollback and
    /// after a committed replay — the incrementally patched dominator view
    /// keeps matching the brute force on the *current* structure.
    #[test]
    fn dominator_view_tracks_journaled_edits_and_rollback(
        n_inputs in 1usize..5,
        gates in proptest::collection::vec((0usize..8, 1usize..4, any::<u64>()), 1..20),
        out_picks in proptest::collection::vec(any::<u64>(), 1..4),
        ops in proptest::collection::vec((0usize..6, any::<u64>(), any::<u64>()), 1..25),
    ) {
        let mut c = build_dag(n_inputs, &gates, &out_picks);
        c.enable_views();
        let cp = c.begin_edit();
        apply_edits(&mut c, &ops);
        assert_idoms_match_brute_force(&mut c);
        c.rollback_to(cp);
        assert_idoms_match_brute_force(&mut c);
        let cp = c.begin_edit();
        apply_edits(&mut c, &ops);
        c.commit(cp);
        assert_idoms_match_brute_force(&mut c);
    }
}
