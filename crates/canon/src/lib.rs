//! Permutation-canonical forms (P-canonization) for truth tables of up to
//! [`MAX_INPUTS`] inputs, and a concurrent signature→value memo table.
//!
//! Two `n`-input functions are **P-equivalent** when one becomes the other
//! under a permutation of the inputs. [`canonicalize`] maps every function
//! to the representative of its P-class: the permuted table with the
//! numerically smallest raw bit mask, together with the permutation that
//! achieves it. The search is a branch-and-bound over input orderings that
//! prunes with *cofactor weights* — the on-set counts of the blocks induced
//! by the inputs chosen so far — instead of enumerating all `k!`
//! permutations ([`canonicalize_brute`] is the brute-force reference, kept
//! for differential testing).
//!
//! The canonical bit mask is a perfect **signature** for memoizing any
//! per-P-class computation: [`SigCache`] is a sharded, thread-safe map from
//! [`Signature`] to an arbitrary cached value, with hit/miss counters. The
//! resynthesis engine uses it to decide "is this cone a comparison
//! function, and with which bounds" once per function class rather than
//! once per cone.
//!
//! # Examples
//!
//! ```
//! use sft_canon::canonicalize;
//! use sft_truth::TruthTable;
//!
//! // x0 AND x1 and x1 AND x0 share one P-class.
//! let a = TruthTable::from_minterms(2, &[3])?;
//! let b = a.permute(&[1, 0])?;
//! let (ca, cb) = (canonicalize(&a), canonicalize(&b));
//! assert_eq!(ca.bits, cb.bits);
//! // The permutation reproduces the canonical table.
//! assert_eq!(a.permute(&ca.perm)?.bits(), ca.bits);
//! # Ok::<(), sft_truth::TruthError>(())
//! ```

#![warn(missing_docs)]

pub mod persist;

use sft_truth::{TruthTable, MAX_INPUTS};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// The canonical representative of a function's P-class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Canonical {
    /// Raw bit mask of the canonical table: the minimum of
    /// `f.permute(p).bits()` over every input permutation `p`.
    pub bits: u128,
    /// The lexicographically smallest permutation achieving the minimum;
    /// `f.permute(&perm)` is the canonical table.
    pub perm: Vec<usize>,
}

impl Canonical {
    /// Expands the canonical form back into a truth table.
    pub fn table(&self) -> TruthTable {
        TruthTable::from_bits(self.perm.len(), self.bits)
    }
}

/// Canonicalizes by cofactor-weight branch and bound.
///
/// Input positions are assigned most-significant first. A partial
/// assignment of `d` inputs splits the minterm space into `2^d` blocks
/// (the cofactors of the chosen inputs); each block's on-count bounds the
/// smallest value the block can contribute, and the sum of those bounds is
/// a sound lower bound on any completion — branches that cannot beat the
/// best known table are cut. Inputs interchangeable under an invariant
/// transposition of `f` are explored only once (smallest index first),
/// which collapses the search for symmetric functions.
///
/// Agrees exactly — bits *and* permutation — with [`canonicalize_brute`].
///
/// # Panics
///
/// Panics if `f` has more than [`MAX_INPUTS`] inputs (unrepresentable).
pub fn canonicalize(f: &TruthTable) -> Canonical {
    let n = f.inputs();
    if n <= 1 {
        return Canonical { bits: f.bits(), perm: (0..n).collect() };
    }
    let mut search = Search::new(f);
    let root_blocks = vec![f_domain_mask(n)];
    search.descend(&root_blocks, (1u32 << n) - 1);
    Canonical { bits: search.best_bits, perm: search.best_perm }
}

/// Brute-force reference canonicalization: tries all `n!` permutations in
/// lexicographic order and keeps the first minimum.
pub fn canonicalize_brute(f: &TruthTable) -> Canonical {
    let n = f.inputs();
    let mut best_bits = f.bits();
    let mut best_perm: Vec<usize> = (0..n).collect();
    let mut perm: Vec<usize> = (0..n).collect();
    loop {
        let bits = f.permute(&perm).expect("valid permutation").bits();
        if bits < best_bits {
            best_bits = bits;
            best_perm = perm.clone();
        }
        if !next_permutation(&mut perm) {
            break;
        }
    }
    Canonical { bits: best_bits, perm: best_perm }
}

/// Advances `perm` to its lexicographic successor; `false` at the last one.
fn next_permutation(perm: &mut [usize]) -> bool {
    let n = perm.len();
    if n < 2 {
        return false;
    }
    let Some(i) = (0..n - 1).rev().find(|&i| perm[i] < perm[i + 1]) else {
        return false;
    };
    let j = (i + 1..n).rev().find(|&j| perm[j] > perm[i]).expect("successor exists");
    perm.swap(i, j);
    perm[i + 1..].reverse();
    true
}

/// Bit mask over the whole `2^n`-minterm domain.
fn f_domain_mask(n: usize) -> u128 {
    if n == MAX_INPUTS {
        u128::MAX
    } else {
        (1u128 << (1u64 << n)) - 1
    }
}

struct Search {
    n: usize,
    f_bits: u128,
    /// `var_masks[v]`: minterms where input `v` is 1.
    var_masks: Vec<u128>,
    /// `class_smaller[v]`: inputs `u < v` interchangeable with `v`.
    class_smaller: Vec<u32>,
    best_bits: u128,
    best_perm: Vec<usize>,
    chosen: Vec<usize>,
}

impl Search {
    fn new(f: &TruthTable) -> Self {
        let n = f.inputs();
        let var_masks: Vec<u128> = (0..n).map(|v| TruthTable::variable(n, v).bits()).collect();
        // Union inputs connected by invariant transpositions; transpositions
        // of a connected class generate its full symmetric group, so any
        // same-class reordering leaves `f` unchanged.
        let mut rep: Vec<usize> = (0..n).collect();
        let mut perm: Vec<usize> = (0..n).collect();
        for u in 0..n {
            for v in u + 1..n {
                if find(&mut rep, u) == find(&mut rep, v) {
                    continue;
                }
                perm.swap(u, v);
                let invariant = f.permute(&perm).expect("valid permutation") == *f;
                perm.swap(u, v);
                if invariant {
                    let (ru, rv) = (find(&mut rep, u), find(&mut rep, v));
                    rep[ru.max(rv)] = ru.min(rv);
                }
            }
        }
        let class_smaller: Vec<u32> = (0..n)
            .map(|v| {
                let rv = find(&mut rep, v);
                (0..v).filter(|&u| find(&mut rep, u) == rv).map(|u| 1u32 << u).sum()
            })
            .collect();
        Search {
            n,
            f_bits: f.bits(),
            var_masks,
            class_smaller,
            // Seed with the identity permutation: it is the lexicographic
            // minimum, so ties never displace it incorrectly.
            best_bits: f.bits(),
            best_perm: (0..n).collect(),
            chosen: Vec::with_capacity(n),
        }
    }

    /// Sum over blocks of the smallest value each block could take if the
    /// remaining inputs were ordered for it alone — a sound lower bound,
    /// exact once every input is placed (blocks are single minterms).
    fn lower_bound(&self, blocks: &[u128], depth: usize) -> u128 {
        let block_log = self.n - depth;
        let mut lb = 0u128;
        for (b, &mask) in blocks.iter().enumerate() {
            let cnt = (self.f_bits & mask).count_ones();
            if cnt == 0 {
                continue;
            }
            let block_min = if cnt >= 128 { u128::MAX } else { (1u128 << cnt) - 1 };
            lb |= block_min << (b << block_log);
        }
        lb
    }

    fn descend(&mut self, blocks: &[u128], remaining: u32) {
        let depth = self.chosen.len();
        if depth == self.n {
            let bits = self.lower_bound(blocks, depth);
            if bits < self.best_bits || (bits == self.best_bits && self.chosen < self.best_perm) {
                self.best_bits = bits;
                self.best_perm = self.chosen.clone();
            }
            return;
        }
        // Candidate children ordered by their cofactor-weight bound so the
        // most promising ordering is completed first, tightening the cut.
        let mut kids: Vec<(u128, usize, Vec<u128>)> = Vec::new();
        for v in 0..self.n {
            if remaining & (1 << v) == 0 || remaining & self.class_smaller[v] != 0 {
                continue;
            }
            let vm = self.var_masks[v];
            let mut child = Vec::with_capacity(blocks.len() * 2);
            for &mask in blocks {
                child.push(mask & !vm);
                child.push(mask & vm);
            }
            let lb = self.lower_bound(&child, depth + 1);
            if lb > self.best_bits {
                continue;
            }
            kids.push((lb, v, child));
        }
        kids.sort_by_key(|&(lb, v, _)| (lb, v));
        for (lb, v, child) in kids {
            // Pruning is strict so every tying leaf is still visited and the
            // lexicographic tie-break matches the brute-force reference.
            if lb > self.best_bits {
                continue;
            }
            self.chosen.push(v);
            self.descend(&child, remaining & !(1 << v));
            self.chosen.pop();
        }
    }
}

fn find(rep: &mut [usize], mut x: usize) -> usize {
    while rep[x] != x {
        rep[x] = rep[rep[x]];
        x = rep[x];
    }
    x
}

/// A memoization key: canonical bits, input count, and a caller-chosen salt
/// distinguishing unrelated computations that share one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Canonical bit mask from [`canonicalize`].
    pub bits: u128,
    /// Number of inputs (distinguishes e.g. constant 0 over 2 vs 3 inputs).
    pub inputs: u8,
    /// Caller-defined discriminant (e.g. a hash of the query options).
    pub salt: u64,
}

/// Canonicalizes `f` and packages the result as a [`Signature`] plus the
/// achieving permutation (needed to translate cached answers back to `f`'s
/// own input numbering).
pub fn signature_of(f: &TruthTable, salt: u64) -> (Signature, Vec<usize>) {
    let canonical = canonicalize(f);
    let sig = Signature { bits: canonical.bits, inputs: f.inputs() as u8, salt };
    (sig, canonical.perm)
}

/// Point-in-time counters of a [`SigCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required computing the value.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when the cache is untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const SHARDS: usize = 16;

/// A sharded, thread-safe memo table keyed by [`Signature`].
///
/// Values are cloned out on lookup, so `V` is typically small (the
/// resynthesis engine stores `Option<ComparisonSpec>`). Concurrent misses
/// on one key may compute the value more than once; both computations must
/// therefore be deterministic — the second insert simply overwrites the
/// first with an identical value.
pub struct SigCache<V> {
    shards: Vec<RwLock<HashMap<Signature, V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Shards rebuilt from cold after a panic poisoned their lock.
    recoveries: AtomicU64,
}

impl<V: Clone> SigCache<V> {
    /// An empty cache.
    pub fn new() -> Self {
        SigCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
        }
    }

    fn shard(&self, sig: &Signature) -> &RwLock<HashMap<Signature, V>> {
        let x = (sig.bits as u64) ^ ((sig.bits >> 64) as u64) ^ sig.salt ^ u64::from(sig.inputs);
        let mixed = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(mixed >> 48) as usize % self.shards.len()]
    }

    /// Rebuilds a shard whose lock a panicking holder poisoned: the map may
    /// have been caught mid-mutation, so its entries are dropped (they are
    /// memoized values — losing them costs recomputation, never
    /// correctness) and the poison flag is cleared so later requests
    /// proceed normally.
    fn recover(&self, shard: &RwLock<HashMap<Signature, V>>) {
        let mut guard = match shard.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.clear();
        shard.clear_poison();
        self.recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Read access that survives a poisoned shard (rebuild, then re-read).
    fn read_shard<'a>(
        &'a self,
        shard: &'a RwLock<HashMap<Signature, V>>,
    ) -> RwLockReadGuard<'a, HashMap<Signature, V>> {
        // The poisoned guard must be moved out and dropped *before*
        // `recover` re-locks the shard: under edition-2021 rules the match
        // scrutinee temporary (and the guard inside it) would otherwise
        // live to the end of the match, self-deadlocking `recover`.
        match shard.read() {
            Ok(guard) => return guard,
            Err(poisoned) => drop(poisoned),
        }
        self.recover(shard);
        shard.read().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Write access that survives a poisoned shard (rebuild, then re-lock).
    fn write_shard<'a>(
        &'a self,
        shard: &'a RwLock<HashMap<Signature, V>>,
    ) -> RwLockWriteGuard<'a, HashMap<Signature, V>> {
        match shard.write() {
            Ok(guard) => return guard,
            Err(poisoned) => drop(poisoned),
        }
        self.recover(shard);
        shard.write().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Looks `sig` up, counting a hit or a miss.
    pub fn lookup(&self, sig: &Signature) -> Option<V> {
        let found = self.read_shard(self.shard(sig)).get(sig).cloned();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a value for `sig`.
    pub fn insert(&self, sig: Signature, value: V) {
        self.write_shard(self.shard(&sig)).insert(sig, value);
    }

    /// Runs `f` on the slot stored for `sig` — `None` when the key is
    /// absent — under the shard's write lock, so concurrent callers observe
    /// one consistent read-modify-write (unlike
    /// [`get_or_insert_with`](Self::get_or_insert_with), which may compute
    /// twice). `f` runs while the lock is held and must be short. A panic
    /// inside `f` poisons only this shard, and the poison-recovery
    /// discipline rebuilds it from cold on the next access instead of
    /// failing every later request.
    pub fn update<R>(&self, sig: &Signature, f: impl FnOnce(Option<&mut V>) -> R) -> R {
        f(self.write_shard(self.shard(sig)).get_mut(sig))
    }

    /// Returns the cached value, computing and storing it on a miss. The
    /// lock is not held while `compute` runs.
    pub fn get_or_insert_with(&self, sig: Signature, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.lookup(&sig) {
            return v;
        }
        let v = compute();
        self.insert(sig, v.clone());
        v
    }

    /// Current counters and size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Shards rebuilt from cold because a panicking lock holder poisoned
    /// them. Non-zero means requests panicked mid-access; the cache stayed
    /// serviceable, at the cost of recomputing the dropped shard.
    pub fn poison_recoveries(&self) -> u64 {
        self.recoveries.load(Ordering::Relaxed)
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.read_shard(s).len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry and resets the counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            self.write_shard(shard).clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Snapshot of every entry, sorted by key `(bits, inputs, salt)` — a
    /// deterministic order independent of hash-map iteration, so persisted
    /// images of equal caches are byte-identical.
    pub fn export_entries(&self) -> Vec<(Signature, V)> {
        let mut entries: Vec<(Signature, V)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            entries.extend(self.read_shard(shard).iter().map(|(k, v)| (*k, v.clone())));
        }
        entries.sort_by_key(|(sig, _)| (sig.bits, sig.inputs, sig.salt));
        entries
    }

    /// Bulk-inserts `entries` (typically a persisted snapshot) without
    /// touching the hit/miss counters, so a warm restart does not inflate
    /// the hit rate.
    pub fn import_entries(&self, entries: impl IntoIterator<Item = (Signature, V)>) {
        for (sig, value) in entries {
            self.write_shard(self.shard(&sig)).insert(sig, value);
        }
    }
}

impl<V: Clone> Default for SigCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_sizes() {
        for bits in 0..2u128 {
            let c = canonicalize(&TruthTable::from_bits(0, bits));
            assert_eq!((c.bits, c.perm.as_slice()), (bits, &[][..]));
        }
        for bits in 0..4u128 {
            let c = canonicalize(&TruthTable::from_bits(1, bits));
            assert_eq!((c.bits, c.perm.as_slice()), (bits, &[0][..]));
        }
    }

    #[test]
    fn two_input_classes() {
        // The two single-minterm tables {1} and {2} are one P-class whose
        // canonical form is the smaller mask 0b0010.
        let a = TruthTable::from_minterms(2, &[1]).unwrap();
        let b = TruthTable::from_minterms(2, &[2]).unwrap();
        let (ca, cb) = (canonicalize(&a), canonicalize(&b));
        assert_eq!(ca.bits, 0b0010);
        assert_eq!(cb.bits, 0b0010);
        assert_eq!(ca.perm, vec![0, 1]);
        assert_eq!(cb.perm, vec![1, 0]);
    }

    #[test]
    fn perm_achieves_bits() {
        let f = TruthTable::from_bits(5, 0x0f0f_1234);
        let c = canonicalize(&f);
        assert_eq!(f.permute(&c.perm).unwrap().bits(), c.bits);
    }

    #[test]
    fn symmetric_function_keeps_identity() {
        // Fully symmetric (majority of 3): every permutation ties, so the
        // lexicographic tie-break must keep the identity.
        let maj = TruthTable::from_minterms(3, &[3, 5, 6, 7]).unwrap();
        let c = canonicalize(&maj);
        assert_eq!(c.bits, maj.bits());
        assert_eq!(c.perm, vec![0, 1, 2]);
    }

    #[test]
    fn exhaustive_three_inputs_matches_brute() {
        for bits in 0..256u128 {
            let f = TruthTable::from_bits(3, bits);
            assert_eq!(canonicalize(&f), canonicalize_brute(&f), "bits {bits:#x}");
        }
    }

    #[test]
    fn next_permutation_is_lexicographic() {
        let mut p = vec![0, 1, 2];
        let mut seen = vec![p.clone()];
        while next_permutation(&mut p) {
            seen.push(p.clone());
        }
        assert_eq!(seen.len(), 6);
        let mut sorted = seen.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted, seen, "generated in sorted order, no repeats");
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let cache: SigCache<Option<u32>> = SigCache::new();
        let (sig, _) = signature_of(&TruthTable::from_bits(3, 0b1010_0101), 7);
        assert_eq!(cache.get_or_insert_with(sig, || Some(42)), Some(42));
        assert_eq!(cache.get_or_insert_with(sig, || unreachable!()), Some(42));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn cache_distinguishes_inputs_and_salt() {
        let cache: SigCache<u8> = SigCache::new();
        // Constant zero over 2 and 3 inputs canonicalizes to bits 0 both
        // times; the input count keeps the entries apart, as does the salt.
        let (s2, _) = signature_of(&TruthTable::zero(2), 0);
        let (s3, _) = signature_of(&TruthTable::zero(3), 0);
        let (s2b, _) = signature_of(&TruthTable::zero(2), 1);
        cache.insert(s2, 2);
        cache.insert(s3, 3);
        cache.insert(s2b, 4);
        assert_eq!(cache.lookup(&s2), Some(2));
        assert_eq!(cache.lookup(&s3), Some(3));
        assert_eq!(cache.lookup(&s2b), Some(4));
    }

    /// The satellite regression: a panic while holding a shard's write
    /// lock (here: inside `update`) must not poison the cache for later
    /// requests — the shard is rebuilt from cold and every key stays
    /// serviceable.
    #[test]
    fn poisoned_shard_recovers_instead_of_propagating() {
        let cache: SigCache<u32> = SigCache::new();
        let sigs: Vec<Signature> =
            (0..32u128).map(|i| Signature { bits: i, inputs: 5, salt: 0 }).collect();
        for &sig in &sigs {
            cache.insert(sig, 1);
        }
        assert_eq!(cache.len(), 32);
        let victim = sigs[0];
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.update(&victim, |_| panic!("mid-insert panic"));
        }));
        assert!(panic.is_err(), "the panic must propagate to its own caller");
        // Subsequent operations on the poisoned shard succeed: the shard
        // was dropped (cold misses), not wedged.
        assert_eq!(cache.lookup(&victim), None, "poisoned shard rebuilt from cold");
        assert_eq!(cache.poison_recoveries(), 1);
        cache.insert(victim, 2);
        assert_eq!(cache.lookup(&victim), Some(2), "hits work again after recovery");
        // Only the one shard lost entries; every key is still queryable.
        let survivors = sigs.iter().filter(|s| cache.lookup(s).is_some()).count();
        assert!(survivors > 1, "other shards must keep their entries");
        assert!(cache.len() < 33, "the poisoned shard's entries were dropped");
        assert_eq!(cache.poison_recoveries(), 1, "recovery happens once, not per access");
    }

    #[test]
    fn update_is_a_locked_read_modify_write() {
        let cache: SigCache<u32> = SigCache::new();
        let sig = Signature { bits: 9, inputs: 3, salt: 0 };
        assert!(!cache.update(&sig, |slot| slot.is_some()));
        cache.insert(sig, 10);
        cache.update(&sig, |slot| *slot.expect("present") += 5);
        assert_eq!(cache.lookup(&sig), Some(15));
    }

    #[test]
    fn export_is_sorted_and_import_restores_without_counting() {
        let cache: SigCache<u8> = SigCache::new();
        for i in (0..40u64).rev() {
            cache.insert(Signature { bits: u128::from(i) << 1, inputs: 4, salt: i % 3 }, i as u8);
        }
        let exported = cache.export_entries();
        assert_eq!(exported.len(), 40);
        let keys: Vec<_> = exported.iter().map(|(s, _)| (s.bits, s.inputs, s.salt)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "export order must be deterministic");
        let restored: SigCache<u8> = SigCache::new();
        restored.import_entries(exported.clone());
        assert_eq!(restored.export_entries(), exported, "round trip preserves entries");
        let stats = restored.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0), "import must not count lookups");
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let cache: SigCache<u64> = SigCache::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..64u64 {
                        let sig = Signature { bits: u128::from(i % 8), inputs: 7, salt: 0 };
                        cache.get_or_insert_with(sig, || (i % 8) * 10);
                        let _ = t;
                    }
                });
            }
        });
        assert_eq!(cache.len(), 8);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 256);
    }
}
