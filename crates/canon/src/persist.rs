//! Crash-safe persistence for warm caches: a versioned, checksummed,
//! atomically-replaced container file.
//!
//! The daemon (`sft serve`) keeps the process-wide identification memo
//! warm across restarts by serializing it to disk. The failure model is
//! hostile: the process may be SIGKILLed mid-write, the file may be
//! truncated by a full disk, bit-flipped by a bad device, or written by a
//! newer (or older) build with a different payload layout. This module
//! guarantees that a reader either gets back exactly the bytes a writer
//! committed, or a typed [`PersistError`] — never a panic, and never
//! silently corrupt data:
//!
//! - **Atomic replace** — [`save`] writes to a sibling temporary file and
//!   `rename`s it over the target, so a crash leaves either the old image
//!   or the new one, both complete.
//! - **Integrity** — the file carries a magic tag, a format [`VERSION`]
//!   and a trailing FNV-1a checksum over everything before it; [`load`]
//!   verifies all three before returning a byte of payload.
//! - **Quarantine** — [`quarantine`] renames a rejected file to a
//!   `.corrupt-N` sibling so the evidence survives while the writer
//!   rebuilds from cold.
//!
//! The payload is an opaque sequence of *sections* (byte strings); the
//! caller owns their encoding. [`ByteReader`] and the `put_*` helpers
//! provide the little-endian primitives both sides use, with every read
//! bounds-checked into [`PersistError::Truncated`].

use std::fmt;
use std::path::{Path, PathBuf};

/// Identifies a cache container file (first 8 bytes).
pub const MAGIC: &[u8; 8] = b"SFTCACHE";

/// Container format version; bump on any layout change so a skewed reader
/// rebuilds from cold instead of misparsing.
pub const VERSION: u32 = 1;

/// Why a persisted cache image was rejected (or could not be touched).
///
/// Everything except [`NotFound`](Self::NotFound) on load means the file
/// existed but cannot be trusted; callers should [`quarantine`] it and
/// rebuild from cold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The file does not exist (a normal cold start, not corruption).
    NotFound,
    /// An I/O operation failed (permissions, disk full, ...).
    Io(String),
    /// The file does not begin with [`MAGIC`].
    BadMagic,
    /// The file was written by a different format version.
    VersionSkew {
        /// Version found in the file.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The file ends before a length-prefixed field it promises.
    Truncated {
        /// Bytes the field needed.
        needed: u64,
        /// Bytes actually available.
        have: u64,
    },
    /// The trailing checksum does not match the content.
    Checksum {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the content.
        computed: u64,
    },
    /// The payload decoded to something structurally impossible.
    Malformed(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::NotFound => write!(f, "cache file not found"),
            PersistError::Io(e) => write!(f, "cache i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a cache file (bad magic)"),
            PersistError::VersionSkew { found, expected } => {
                write!(f, "cache version skew: file v{found}, this build reads v{expected}")
            }
            PersistError::Truncated { needed, have } => {
                write!(f, "cache file truncated: needed {needed} bytes, have {have}")
            }
            PersistError::Checksum { stored, computed } => {
                write!(f, "cache checksum mismatch: stored {stored:#x}, computed {computed:#x}")
            }
            PersistError::Malformed(what) => write!(f, "cache payload malformed: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Whether the error indicates a present-but-untrustworthy file that
/// should be quarantined (as opposed to a normal cold start).
impl PersistError {
    /// True for every rejection except [`PersistError::NotFound`].
    pub fn is_corruption(&self) -> bool {
        !matches!(self, PersistError::NotFound)
    }
}

/// FNV-1a 64-bit hash — the container checksum. Not cryptographic; it
/// defends against truncation and bit rot, not adversaries with write
/// access to the cache directory.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Appends a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u128` little-endian.
pub fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked little-endian cursor over a byte slice. Every read
/// returns [`PersistError::Truncated`] instead of panicking when the
/// slice runs out.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] when fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated {
                needed: n as u64,
                have: self.remaining() as u64,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a little-endian `u8`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of input.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of input.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `u128`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of input.
    pub fn u128(&mut self) -> Result<u128, PersistError> {
        Ok(u128::from_le_bytes(self.bytes(16)?.try_into().expect("16 bytes")))
    }
}

/// Encodes `sections` into a complete container image (header, sections,
/// trailing checksum). [`decode_sections`] inverts it exactly; equal
/// section lists produce byte-identical images.
pub fn encode_sections(sections: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        MAGIC.len() + 8 + 8 + sections.iter().map(|s| 8 + s.len()).sum::<usize>(),
    );
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_u32(&mut out, sections.len() as u32);
    for section in sections {
        put_u64(&mut out, section.len() as u64);
        out.extend_from_slice(section);
    }
    let checksum = fnv1a(&out);
    put_u64(&mut out, checksum);
    out
}

/// Decodes a container image back into its sections, verifying magic,
/// version and checksum.
///
/// # Errors
///
/// [`PersistError::BadMagic`], [`PersistError::VersionSkew`],
/// [`PersistError::Truncated`] or [`PersistError::Checksum`] — the caller
/// should treat any of them as "rebuild from cold".
pub fn decode_sections(bytes: &[u8]) -> Result<Vec<Vec<u8>>, PersistError> {
    // The checksum seals everything before it; verify first so all later
    // parsing runs on bytes known to be exactly what the writer produced.
    if bytes.len() < MAGIC.len() + 8 {
        return Err(PersistError::Truncated {
            needed: (MAGIC.len() + 8) as u64,
            have: bytes.len() as u64,
        });
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let (content, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    let computed = fnv1a(content);
    if stored != computed {
        return Err(PersistError::Checksum { stored, computed });
    }
    let mut reader = ByteReader::new(&content[MAGIC.len()..]);
    let version = reader.u32()?;
    if version != VERSION {
        return Err(PersistError::VersionSkew { found: version, expected: VERSION });
    }
    let count = reader.u32()?;
    let mut sections = Vec::with_capacity(count.min(1024) as usize);
    for _ in 0..count {
        let len = reader.u64()?;
        if len > reader.remaining() as u64 {
            return Err(PersistError::Truncated { needed: len, have: reader.remaining() as u64 });
        }
        sections.push(reader.bytes(len as usize)?.to_vec());
    }
    if reader.remaining() != 0 {
        return Err(PersistError::Malformed(format!(
            "{} trailing bytes after the last section",
            reader.remaining()
        )));
    }
    Ok(sections)
}

/// Writes `sections` to `path` atomically: the image goes to a sibling
/// `*.tmp` file first and is `rename`d into place, so a crash at any
/// instant leaves either the previous complete image or the new one.
///
/// # Errors
///
/// [`PersistError::Io`] on any filesystem failure.
pub fn save(path: &Path, sections: &[Vec<u8>]) -> Result<(), PersistError> {
    let io = |e: std::io::Error| PersistError::Io(format!("{}: {e}", path.display()));
    let image = encode_sections(sections);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, &image).map_err(io)?;
    std::fs::rename(&tmp, path).map_err(io)
}

/// Loads and verifies the container at `path`.
///
/// # Errors
///
/// [`PersistError::NotFound`] for a missing file (cold start); any other
/// [`PersistError`] means the file is present but untrustworthy and should
/// be [`quarantine`]d.
pub fn load(path: &Path) -> Result<Vec<Vec<u8>>, PersistError> {
    let bytes = std::fs::read(path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            PersistError::NotFound
        } else {
            PersistError::Io(format!("{}: {e}", path.display()))
        }
    })?;
    decode_sections(&bytes)
}

/// Moves a rejected cache file aside to `<path>.corrupt-N` (first free N)
/// so the evidence survives while the caller rebuilds from cold. Returns
/// the quarantine path.
///
/// # Errors
///
/// [`PersistError::Io`] when the rename fails (or no free slot exists).
pub fn quarantine(path: &Path) -> Result<PathBuf, PersistError> {
    for n in 0..10_000u32 {
        let mut name = path.as_os_str().to_owned();
        name.push(format!(".corrupt-{n}"));
        let target = PathBuf::from(name);
        if target.exists() {
            continue;
        }
        return match std::fs::rename(path, &target) {
            Ok(()) => Ok(target),
            Err(e) => Err(PersistError::Io(format!("{}: {e}", path.display()))),
        };
    }
    Err(PersistError::Io(format!("{}: no free quarantine slot", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sections() -> Vec<Vec<u8>> {
        vec![vec![1, 2, 3, 4, 5], Vec::new(), (0..=255u8).collect()]
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sft-persist-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn encode_decode_round_trip_is_byte_stable() {
        let sections = sample_sections();
        let image = encode_sections(&sections);
        let decoded = decode_sections(&image).expect("valid image");
        assert_eq!(decoded, sections);
        assert_eq!(encode_sections(&decoded), image, "encode∘decode is the identity on images");
    }

    #[test]
    fn every_single_flipped_byte_is_detected() {
        let image = encode_sections(&sample_sections());
        for i in 0..image.len() {
            let mut bad = image.clone();
            bad[i] ^= 0x40;
            assert!(
                decode_sections(&bad).is_err(),
                "flipping byte {i} of {} must be detected",
                image.len()
            );
        }
    }

    #[test]
    fn truncation_at_every_eighth_is_detected() {
        let image = encode_sections(&sample_sections());
        for octile in 0..8 {
            let cut = image.len() * octile / 8;
            assert!(
                decode_sections(&image[..cut]).is_err(),
                "truncation to {cut}/{} bytes must be detected",
                image.len()
            );
        }
    }

    #[test]
    fn version_skew_is_reported_as_such() {
        let mut image = encode_sections(&sample_sections());
        // Patch the version field and re-seal the checksum so only the
        // version differs.
        image[8] ^= 0xFF;
        let len = image.len();
        let checksum = fnv1a(&image[..len - 8]);
        image[len - 8..].copy_from_slice(&checksum.to_le_bytes());
        match decode_sections(&image) {
            Err(PersistError::VersionSkew { expected, .. }) => assert_eq!(expected, VERSION),
            other => panic!("expected version skew, got {other:?}"),
        }
    }

    #[test]
    fn wrong_magic_is_rejected_before_anything_else() {
        let mut image = encode_sections(&sample_sections());
        image[0] = b'X';
        assert_eq!(decode_sections(&image), Err(PersistError::BadMagic));
        assert!(decode_sections(b"").is_err());
        assert!(decode_sections(b"short").is_err());
    }

    #[test]
    fn save_load_round_trip_and_atomic_replace() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("cache.bin");
        let first = sample_sections();
        save(&path, &first).expect("save");
        assert_eq!(load(&path).expect("load"), first);
        // Overwrite with different content: the replace is atomic and the
        // temp file does not linger.
        let second = vec![vec![9u8; 100]];
        save(&path, &second).expect("save again");
        assert_eq!(load(&path).expect("reload"), second);
        assert!(!dir.join("cache.bin.tmp").exists(), "temp file must not linger");
    }

    #[test]
    fn missing_file_is_a_cold_start_not_corruption() {
        let dir = temp_dir("missing");
        let err = load(&dir.join("never-written.bin")).unwrap_err();
        assert_eq!(err, PersistError::NotFound);
        assert!(!err.is_corruption());
        assert!(PersistError::BadMagic.is_corruption());
    }

    #[test]
    fn quarantine_moves_the_file_aside() {
        let dir = temp_dir("quarantine");
        let path = dir.join("cache.bin");
        std::fs::write(&path, b"garbage").expect("write");
        let q1 = quarantine(&path).expect("quarantine");
        assert!(q1.to_string_lossy().contains("corrupt-0"));
        assert!(!path.exists());
        std::fs::write(&path, b"more garbage").expect("write");
        let q2 = quarantine(&path).expect("second quarantine");
        assert_ne!(q1, q2, "each quarantine gets a fresh slot");
        assert!(q2.to_string_lossy().contains("corrupt-1"));
    }

    #[test]
    fn byte_reader_reports_truncation_not_panic() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.u8().unwrap(), 1);
        assert!(matches!(r.u64(), Err(PersistError::Truncated { needed: 8, have: 2 })));
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    fn error_displays_are_informative() {
        let text = PersistError::VersionSkew { found: 9, expected: VERSION }.to_string();
        assert!(text.contains("v9"), "{text}");
        let text = PersistError::Checksum { stored: 0xdead, computed: 0xbeef }.to_string();
        assert!(text.contains("0xdead"), "{text}");
    }
}
