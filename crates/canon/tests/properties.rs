//! Property tests pinning the canonicalization contract: P-invariance and
//! exact agreement between the pruned search and brute force.

use proptest::prelude::*;
use sft_canon::{canonicalize, canonicalize_brute};
use sft_truth::TruthTable;

fn arb_table(n: usize) -> impl Strategy<Value = TruthTable> {
    any::<u128>().prop_map(move |bits| TruthTable::from_bits(n, bits))
}

fn arb_perm(n: usize) -> impl Strategy<Value = Vec<usize>> {
    Just((0..n).collect::<Vec<usize>>()).prop_shuffle()
}

/// Every 4-input function: the pruned search returns exactly the
/// brute-force canonical form, bits and permutation both.
#[test]
fn exhaustive_four_inputs_matches_brute() {
    for bits in 0..=u16::MAX {
        let f = TruthTable::from_bits(4, u128::from(bits));
        let (pruned, brute) = (canonicalize(&f), canonicalize_brute(&f));
        assert_eq!(pruned, brute, "bits {bits:#06x}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// (a) The signature is a P-class invariant: permuting the inputs never
    /// changes the canonical bits.
    #[test]
    fn signature_invariant_under_permutation_5(t in arb_table(5), p in arb_perm(5)) {
        let permuted = t.permute(&p).expect("valid permutation");
        prop_assert_eq!(canonicalize(&t).bits, canonicalize(&permuted).bits);
    }

    /// Same invariance at the maximum supported width.
    #[test]
    fn signature_invariant_under_permutation_7(t in arb_table(7), p in arb_perm(7)) {
        let permuted = t.permute(&p).expect("valid permutation");
        prop_assert_eq!(canonicalize(&t).bits, canonicalize(&permuted).bits);
    }

    /// (b) Pruned == brute force on sampled 6-input tables.
    #[test]
    fn sampled_six_inputs_match_brute(t in arb_table(6)) {
        prop_assert_eq!(canonicalize(&t), canonicalize_brute(&t));
    }

    /// (b) Pruned == brute force on sampled 7-input tables.
    #[test]
    fn sampled_seven_inputs_match_brute(t in arb_table(7)) {
        prop_assert_eq!(canonicalize(&t), canonicalize_brute(&t));
    }

    /// The reported permutation really produces the canonical table, and
    /// canonicalization is idempotent (the canonical table maps to itself).
    #[test]
    fn perm_achieves_bits_and_idempotent(t in arb_table(6)) {
        let c = canonicalize(&t);
        prop_assert_eq!(t.permute(&c.perm).expect("valid permutation").bits(), c.bits);
        prop_assert_eq!(canonicalize(&c.table()).bits, c.bits);
    }
}
