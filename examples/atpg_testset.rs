//! Deterministic test-set generation with compaction, before and after
//! resynthesis: the resynthesized circuit stays fully testable (the
//! paper's Table 6 claim, from the ATPG side) and often needs no more
//! vectors.
//!
//! Run with `cargo run --release --example atpg_testset`.

use sft::atpg::{generate_test_set, remove_redundancies, TestSetOptions};
use sft::circuits::builders::ripple_carry_adder;
use sft::core::{procedure2, ResynthOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = ripple_carry_adder(8);
    println!("workload: 8-bit ripple-carry adder, {}", original.stats());

    let mut modified = original.clone();
    procedure2(&mut modified, &ResynthOptions::default())?;
    remove_redundancies(&mut modified, 20_000);
    assert!(sft::bdd::equivalent(&original, &modified)?.is_equivalent());

    let opts = TestSetOptions::default();
    for (label, circuit) in [("original", &original), ("modified", &modified)] {
        let set = generate_test_set(circuit, &opts);
        println!(
            "{label}: {} faults, {} redundant, {} aborted, {} vectors, coverage {:.2}%",
            set.total_faults,
            set.redundant,
            set.aborted,
            set.vectors.len(),
            set.coverage() * 100.0
        );
        assert_eq!(set.aborted, 0, "small circuits must not abort");
    }
    println!("\nboth circuits fully testable with compact deterministic test sets");
    Ok(())
}
