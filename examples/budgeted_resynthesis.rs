//! The effort governor end to end: resynthesis under a wall-clock
//! deadline, a step budget, and cooperative cancellation.
//!
//! The paper's procedures are anytime algorithms — every pass is
//! independently BDD-verified before it is committed — so an exhausted
//! budget returns the best verified circuit so far together with a
//! [`StopReason`], never an error that loses work.
//!
//! Run with `cargo run --release --example budgeted_resynthesis`.

use sft::budget::{Budget, CancelFlag, StopReason};
use sft::circuits::random::{random_circuit, RandomCircuitConfig};
use sft::core::{resynthesize_with_budget, ResynthOptions};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = random_circuit(&RandomCircuitConfig {
        inputs: 12,
        outputs: 6,
        gates: 80,
        window: 24,
        seed: 1,
    });
    println!("workload: {}", original.stats());
    let opts = ResynthOptions::default();

    // 1. Unlimited: the run converges on its own.
    let mut full = original.clone();
    let report = resynthesize_with_budget(&mut full, &opts, &Budget::unlimited())?;
    println!("\nunlimited:   {report}");
    assert!(!report.stop_reason.is_early());

    // 2. A step budget bounds the number of candidates scored. The result
    //    is a verified prefix of the full run — equivalent, partly improved.
    let budget = Budget::unlimited().with_step_limit(1000);
    let mut partial = original.clone();
    let report = resynthesize_with_budget(&mut partial, &opts, &budget)?;
    println!("step-limit:  {report}");
    assert_eq!(report.stop_reason, StopReason::StepBudget);
    assert!(sft::bdd::equivalent(&original, &partial)?.is_equivalent());
    assert!(report.passes >= 1, "enough budget for at least one pass");

    // 3. A pre-expired deadline returns the input unchanged — still Ok.
    let budget = Budget::unlimited().with_time_limit(Duration::ZERO);
    let mut untouched = original.clone();
    let report = resynthesize_with_budget(&mut untouched, &opts, &budget)?;
    println!("deadline 0s: {report}");
    assert_eq!(report.stop_reason, StopReason::Deadline);
    assert_eq!(untouched, original);

    // 4. Cancellation: any clone of the flag stops every engine holding a
    //    budget built from it (here raised up front; in a server it would
    //    come from a signal handler or supervisor thread).
    let flag = CancelFlag::new();
    flag.cancel();
    let budget = Budget::unlimited().with_cancel(flag);
    let mut cancelled = original.clone();
    let report = resynthesize_with_budget(&mut cancelled, &opts, &budget)?;
    println!("cancelled:   {report}");
    assert_eq!(report.stop_reason, StopReason::Cancelled);

    println!("\nevery stop kept a verified circuit — no work lost.");
    Ok(())
}
