//! Robust path-delay-fault test generation for comparison units
//! (Section 3.3 / Table 1 of the paper).
//!
//! Builds comparison units for several specs, generates the constructive
//! robust two-pattern test set for each, and validates full coverage with
//! the independent robust checker of `sft-delay`.
//!
//! Run with `cargo run --example delay_test_generation`.

use sft::core::testability::{unit_test_set, validate_test_set};
use sft::core::{build_standalone_unit, ComparisonSpec};
use sft::delay::enumerate_paths;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let specs = [
        ComparisonSpec::new(vec![0, 1, 2, 3], 11, 12)?, // the paper's Fig. 6
        ComparisonSpec::new(vec![3, 2, 1, 0], 5, 10)?,  // the paper's f2
        ComparisonSpec::new(vec![0, 1, 2, 3, 4], 7, 22)?,
        ComparisonSpec::new_complemented(vec![1, 0, 2, 3], 3, 9)?,
    ];
    for spec in &specs {
        let unit = build_standalone_unit(spec)?;
        let paths = enumerate_paths(&unit, 10_000)?;
        let tests = unit_test_set(spec);
        let (covered, total) = validate_test_set(spec, &tests);
        println!(
            "unit {spec}: {} gates, {} paths, {} tests -> {covered}/{total} PDFs robustly covered",
            unit.stats().gates,
            paths.len(),
            tests.len(),
        );
        assert_eq!(covered, total, "comparison units are fully robustly testable");
        if spec.lower == 11 && spec.upper == 12 {
            println!("  (this is Table 1 of the paper)");
            for t in &tests {
                println!("  {t}");
            }
        }
    }
    println!("\nall units fully robustly testable — Section 3.3 reproduced");
    Ok(())
}
