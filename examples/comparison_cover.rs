//! The Section 3.1 extension: implementing an *arbitrary* function as an OR
//! of comparison units, each fully robustly testable.
//!
//! Run with `cargo run --example comparison_cover`.

use sft::core::cover::{build_cover_in, comparison_cover};
use sft::core::IdentifyOptions;
use sft::netlist::Circuit;
use sft::truth::TruthTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = IdentifyOptions::default();
    let functions: Vec<(&str, TruthTable)> = vec![
        ("majority3", TruthTable::from_minterms(3, &[3, 5, 6, 7])?),
        ("parity4", TruthTable::from_fn(4, |m| m.count_ones() % 2 == 1)),
        (
            "prime5",
            TruthTable::from_fn(5, |m| {
                matches!(m, 2 | 3 | 5 | 7 | 11 | 13 | 17 | 19 | 23 | 29 | 31)
            }),
        ),
        ("interval", TruthTable::from_fn(5, |m| (9..=23).contains(&m))),
    ];
    for (name, f) in &functions {
        let cover = comparison_cover(f, &opts);
        println!("{name}: {} on-minterms -> {} comparison unit(s)", f.on_count(), cover.len());
        for spec in &cover {
            println!("    unit {spec}");
        }
        // Build the OR-of-units circuit and verify it exactly.
        let mut c = Circuit::new(*name);
        let inputs: Vec<_> = (0..f.inputs()).map(|i| c.add_input(format!("y{}", i + 1))).collect();
        let out = build_cover_in(&mut c, &inputs, f, &opts)?;
        c.add_output(out, "f");
        for m in 0..f.size() {
            let assignment: Vec<bool> =
                (0..f.inputs()).map(|i| m >> (f.inputs() - 1 - i) & 1 == 1).collect();
            assert_eq!(c.eval_assignment(&assignment)[0], f.value(m), "{name} minterm {m}");
        }
        println!("    built and verified: {}", c.stats());
    }
    Ok(())
}
