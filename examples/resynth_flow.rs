//! The paper's full flow on an arithmetic workload: Procedure 2, redundancy
//! removal, random-pattern stuck-at testability before/after (Table 6
//! style), robust PDF coverage before/after (Table 7 style), and technology
//! mapping (Table 4 style).
//!
//! Run with `cargo run --release --example resynth_flow`.

use sft::atpg::remove_redundancies;
use sft::circuits::builders::comparator;
use sft::core::{procedure2, ResynthOptions};
use sft::delay::{pdf_campaign, PdfCampaignConfig};
use sft::netlist::Circuit;
use sft::sim::{campaign, fault_list, CampaignConfig};
use sft::techmap::{map_circuit, Library};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = comparator(10);
    println!("workload: 10-bit magnitude comparator, {}", original.stats());

    // Procedure 2 + redundancy removal (the Table 2 recipe).
    let mut modified = original.clone();
    let report = procedure2(&mut modified, &ResynthOptions::default())?;
    println!("\nProcedure 2: {report}");
    let red = remove_redundancies(&mut modified, 20_000);
    println!(
        "redundancy removal: {} removed, gates {} -> {}",
        red.removed, red.gates_before, red.gates_after
    );
    println!("modified: {}", modified.stats());

    // Exact equivalence.
    assert!(sft::bdd::equivalent(&original, &modified)?.is_equivalent());
    println!("BDD equivalence: OK");

    // Stuck-at random-pattern testability at equal budget & seed (Table 6).
    let stuck = |c: &Circuit| {
        let faults = fault_list(c);
        let r = campaign(
            c,
            &faults,
            &CampaignConfig { max_patterns: 1 << 14, plateau: 0, seed: 11, ..Default::default() },
        );
        (r.total_faults, r.remaining(), r.coverage())
    };
    let (fo, ro, co) = stuck(&original);
    let (fm, rm, cm) = stuck(&modified);
    println!("\nstuck-at (2^14 random patterns):");
    println!("  original: {fo} faults, {ro} remain, coverage {:.2}%", co * 100.0);
    println!("  modified: {fm} faults, {rm} remain, coverage {:.2}%", cm * 100.0);

    // Robust PDF coverage at equal budget & seed (Table 7).
    let pdf_cfg = PdfCampaignConfig {
        max_pairs: 1 << 13,
        plateau: 1 << 11,
        seed: 11,
        path_limit: 1 << 20,
        ..Default::default()
    };
    let pb = pdf_campaign(&original, &pdf_cfg)?;
    let pa = pdf_campaign(&modified, &pdf_cfg)?;
    println!("\nrobust path delay faults (random pairs):");
    println!(
        "  original: {}/{} detected ({:.2}%)",
        pb.detected,
        pb.total_faults,
        pb.coverage() * 100.0
    );
    println!(
        "  modified: {}/{} detected ({:.2}%)",
        pa.detected,
        pa.total_faults,
        pa.coverage() * 100.0
    );

    // Technology mapping (Table 4).
    let lib = Library::standard();
    println!("\ntechnology mapping:");
    println!("  original: {}", map_circuit(&original, &lib));
    println!("  modified: {}", map_circuit(&modified, &lib));
    Ok(())
}
