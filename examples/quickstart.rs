//! Quickstart: identify a comparison function, build its unit, and
//! resynthesize a small circuit with Procedure 2.
//!
//! Run with `cargo run --example quickstart`.

use sft::core::{build_standalone_unit, identify, procedure2, IdentifyOptions, ResynthOptions};
use sft::netlist::bench_format;
use sft::truth::TruthTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The paper's running example: f2 is 1 on minterms {1,5,6,9,10,14}.
    let f2 = TruthTable::from_minterms(4, &[1, 5, 6, 9, 10, 14])?;
    let spec = identify(&f2, &IdentifyOptions::default()).expect("f2 is a comparison function");
    println!("f2 is the comparison function {spec}");

    // 2. Build the comparison unit (Figure 1 of the paper) and show it.
    let unit = build_standalone_unit(&spec)?;
    println!("\ncomparison unit ({}):", unit.stats());
    print!("{}", bench_format::write(&unit));

    // 3. Resynthesize a wasteful SOP implementation of f2 with Procedure 2.
    //    f2 = !y4(!y2 y3 + y2 !y3) + y4(!y1 !y2 y3 ... ) — here we just use
    //    a flat two-level form synthesized from the minterms.
    let mut sop = sft::netlist::Circuit::new("f2_sop");
    let inputs: Vec<_> = (0..4).map(|i| sop.add_input(format!("y{}", i + 1))).collect();
    let negations: Vec<_> = inputs
        .iter()
        .map(|&y| sop.add_gate(sft::netlist::GateKind::Not, vec![y]))
        .collect::<Result<_, _>>()?;
    let mut terms = Vec::new();
    for m in f2.on_set() {
        let fanins: Vec<_> =
            (0..4).map(|i| if m >> (3 - i) & 1 == 1 { inputs[i] } else { negations[i] }).collect();
        terms.push(sop.add_gate(sft::netlist::GateKind::And, fanins)?);
    }
    let out = sop.add_gate(sft::netlist::GateKind::Or, terms)?;
    sop.add_output(out, "f2");

    let before = sop.stats();
    let report = procedure2(&mut sop, &ResynthOptions::default())?;
    println!("\nProcedure 2 on the flat SOP: {report}");
    println!("before: {before}");
    println!("after:  {}", sop.stats());

    // 4. The replacement is exact: check against the truth table.
    for m in 0..16u64 {
        let assignment: Vec<bool> = (0..4).map(|i| m >> (3 - i) & 1 == 1).collect();
        assert_eq!(sop.eval_assignment(&assignment)[0], f2.value(m), "minterm {m}");
    }
    println!("\nexhaustive check passed: the resynthesized circuit implements f2 exactly");
    Ok(())
}
