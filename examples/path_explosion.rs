//! Non-enumerative robust PDF analysis on a circuit whose paths cannot be
//! enumerated — the regime of the paper's irs15850 (23 million paths),
//! where the reductions of Procedure 3 matter most.
//!
//! Run with `cargo run --release --example path_explosion`.

use sft::delay::{robust_count_for_pair, robust_detection_masks, TwoPatternSim};
use sft::netlist::{Circuit, GateKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 40 doubling stages of reconvergence: 2^40 ≈ 10^12 paths.
    let mut c = Circuit::new("explosion");
    let mut cur = c.add_input("a");
    let trigger = c.add_input("t");
    for i in 0..40 {
        let l = c.add_gate(GateKind::Buf, vec![cur])?;
        let r = c.add_gate(GateKind::Xor, vec![cur, trigger])?;
        cur = c.add_gate(GateKind::Or, vec![l, r])?;
        let _ = i;
    }
    c.add_output(cur, "y");
    println!("circuit: {} gates, {} paths", c.stats().gates, c.path_count());
    assert!(c.path_count() > 1u128 << 39, "path explosion established");

    // Enumeration is hopeless; the non-enumerative label computation still
    // answers "how many PDFs does this pair robustly test" in O(lines).
    let sim = TwoPatternSim::new(&c);
    for (v1, v2, label) in [
        ([0u64, 0], [u64::MAX, 0], "a rises, t = 0"),
        ([0, u64::MAX], [u64::MAX, u64::MAX], "a rises, t = 1"),
        ([u64::MAX, 0], [0, 0], "a falls, t = 0"),
    ] {
        let waves = sim.simulate(&v1, &v2);
        let analysis = robust_detection_masks(&c, &waves);
        let count = robust_count_for_pair(&c, &waves, &analysis, 0);
        println!("pair ({label}): {count} path delay faults robustly tested");
    }
    println!("\nper-pair robust counts computed without enumerating any path");
    Ok(())
}
