//! Parallel-scaling benchmark harness.
//!
//! Runs the two parallel hot paths — Procedure-2 resynthesis (candidate
//! scoring) and the random-pattern stuck-at campaign (pattern blocks) — on
//! the bundled benchmark suite at 1 thread and at all cores, checks that
//! both thread counts produce bit-identical results, and writes machine-
//! readable reports to `BENCH_resynth.json` and `BENCH_sim.json` (wall
//! time per thread count, speedup, gate counts, path counts, coverage).
//!
//! ```text
//! cargo bench --bench perf             # full suite
//! cargo bench --bench perf -- --quick  # 3-circuit smoke mode (CI)
//! cargo bench --bench perf -- --jobs 8 # explicit parallel thread count
//! ```
//!
//! The JSON is hand-rolled (the workspace vendors no serde); every row is
//! flat key/value so downstream tooling can `jq` it directly.

use sft::circuits::{suite, suite_small, SuiteEntry};
use sft::core::{procedure2, ResynthOptions};
use sft::netlist::Circuit;
use sft::par::Jobs;
use sft::sim::{campaign, fault_list, CampaignConfig, CampaignResult};
use std::fmt::Write as _;
use std::time::Instant;

struct Config {
    quick: bool,
    jobs: Jobs,
    patterns: u64,
    out_dir: std::path::PathBuf,
}

impl Config {
    fn from_args() -> Config {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let quick = args.iter().any(|a| a == "--quick");
        let jobs = args
            .iter()
            .position(|a| a == "--jobs")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(Jobs::all_cores);
        Config {
            quick,
            jobs,
            patterns: if quick { 1 << 12 } else { 1 << 16 },
            out_dir: std::env::var_os("CARGO_MANIFEST_DIR")
                .map(Into::into)
                .unwrap_or_else(|| ".".into()),
        }
    }

    fn suite(&self) -> Vec<SuiteEntry> {
        if self.quick {
            suite_small()
        } else {
            suite()
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// One flat JSON object from `(key, rendered value)` pairs (values must
/// already be valid JSON fragments — numbers, booleans, quoted strings).
fn json_object(fields: &[(&str, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": {}", json_escape(k), v);
    }
    out.push('}');
    out
}

fn json_report(meta: &[(&str, String)], rows: &[String]) -> String {
    let mut out = String::from("{\n");
    for (k, v) in meta {
        let _ = writeln!(out, "  \"{}\": {},", json_escape(k), v);
    }
    out.push_str("  \"circuits\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(out, "    {row}{sep}");
    }
    out.push_str("  ]\n}\n");
    out
}

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

fn resynth_row(entry: &SuiteEntry, cfg: &Config) -> String {
    let opts = |jobs: Jobs| ResynthOptions {
        max_candidates_per_gate: if cfg.quick { 60 } else { 150 },
        jobs,
        ..ResynthOptions::default()
    };
    let run = |jobs: Jobs| {
        // Every timed run starts with cold identification tables: the
        // serial run must not pre-warm the parallel one (or the next
        // circuit), and the reported counters are per-run.
        sft::core::identify_cache_clear();
        let mut c = entry.circuit.clone();
        let (report, secs) = time(|| procedure2(&mut c, &opts(jobs)).expect("resynth verifies"));
        (c, report, secs, sft::core::identify_cache_stats())
    };
    let (serial_c, report, serial_secs, stats) = run(Jobs::serial());
    let (par_c, _, par_secs, _) = run(cfg.jobs);
    assert_eq!(serial_c, par_c, "{}: resynthesis must be thread-count invariant", entry.name);
    json_object(&[
        ("name", format!("\"{}\"", json_escape(entry.name))),
        ("gates_before", report.gates_before.to_string()),
        ("gates_after", report.gates_after.to_string()),
        ("paths_before", report.paths_before.to_string()),
        ("paths_after", report.paths_after.to_string()),
        ("replacements", report.replacements.to_string()),
        ("cache_hits", stats.hits.to_string()),
        ("cache_misses", stats.misses.to_string()),
        ("secs_1_thread", format!("{serial_secs:.4}")),
        ("secs_n_threads", format!("{par_secs:.4}")),
        ("speedup", format!("{:.3}", serial_secs / par_secs.max(1e-9))),
    ])
}

fn sim_row(entry: &SuiteEntry, cfg: &Config) -> String {
    let faults = fault_list(&entry.circuit);
    let campaign_cfg = |jobs: Jobs| CampaignConfig {
        max_patterns: cfg.patterns,
        plateau: 0,
        seed: 0x5f7,
        jobs,
        ..CampaignConfig::default()
    };
    // Best of three: campaigns finish in milliseconds, where one scheduler
    // hiccup would otherwise dominate the measured ratio.
    let run = |jobs: Jobs| -> (CampaignResult, f64) {
        let (mut best_r, mut best_secs) =
            time(|| campaign(&entry.circuit, &faults, &campaign_cfg(jobs)));
        for _ in 0..2 {
            let (r, secs) = time(|| campaign(&entry.circuit, &faults, &campaign_cfg(jobs)));
            assert_eq!(best_r, r, "{}: campaign must be run-to-run deterministic", entry.name);
            if secs < best_secs {
                best_secs = secs;
            }
            best_r = r;
        }
        (best_r, best_secs)
    };
    let (serial_r, serial_secs) = run(Jobs::serial());
    let (par_r, par_secs) = run(cfg.jobs);
    assert_eq!(serial_r, par_r, "{}: campaign must be thread-count invariant", entry.name);
    // The parallel engine must never lose to serial: speedup >= 0.9, with
    // 2ms of absolute slack so micro-campaign timer noise cannot fail the
    // bench.
    assert!(
        par_secs <= serial_secs / 0.9 + 0.002,
        "{}: parallel campaign regressed: {par_secs:.4}s at {} threads vs {serial_secs:.4}s serial",
        entry.name,
        cfg.jobs,
    );
    let c: &Circuit = &entry.circuit;
    json_object(&[
        ("name", format!("\"{}\"", json_escape(entry.name))),
        ("gates", c.two_input_gate_count().to_string()),
        ("paths", c.path_count().to_string()),
        ("faults", serial_r.total_faults.to_string()),
        ("detected", serial_r.detected.to_string()),
        ("coverage", format!("{:.4}", serial_r.coverage())),
        ("patterns_applied", serial_r.patterns_applied.to_string()),
        ("secs_1_thread", format!("{serial_secs:.4}")),
        ("secs_n_threads", format!("{par_secs:.4}")),
        ("speedup", format!("{:.3}", serial_secs / par_secs.max(1e-9))),
    ])
}

fn main() {
    let cfg = Config::from_args();
    let entries = cfg.suite();
    let meta = |kind: &str| {
        vec![
            ("benchmark", format!("\"{kind}\"")),
            ("threads", cfg.jobs.get().to_string()),
            ("quick", cfg.quick.to_string()),
        ]
    };

    eprintln!(
        "perf: {} circuits, 1 vs {} thread(s), {} patterns{}",
        entries.len(),
        cfg.jobs,
        cfg.patterns,
        if cfg.quick { " (quick)" } else { "" }
    );

    let resynth_rows: Vec<String> = entries
        .iter()
        .map(|e| {
            eprintln!("  resynth {}", e.name);
            resynth_row(e, &cfg)
        })
        .collect();
    let resynth_path = cfg.out_dir.join("BENCH_resynth.json");
    std::fs::write(&resynth_path, json_report(&meta("resynth"), &resynth_rows))
        .expect("write BENCH_resynth.json");
    eprintln!("wrote {}", resynth_path.display());

    let sim_rows: Vec<String> = entries
        .iter()
        .map(|e| {
            eprintln!("  campaign {}", e.name);
            sim_row(e, &cfg)
        })
        .collect();
    let sim_path = cfg.out_dir.join("BENCH_sim.json");
    std::fs::write(&sim_path, json_report(&meta("sim"), &sim_rows)).expect("write BENCH_sim.json");
    eprintln!("wrote {}", sim_path.display());
}
