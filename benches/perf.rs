//! Parallel-scaling benchmark harness.
//!
//! Runs the two parallel hot paths — Procedure-2 resynthesis (candidate
//! scoring) and the random-pattern stuck-at campaign (pattern blocks) — on
//! the bundled benchmark suite at 1 thread and at all cores, checks that
//! both thread counts produce bit-identical results, and writes machine-
//! readable reports to `BENCH_resynth.json` and `BENCH_sim.json` (wall
//! time per thread count, speedup, gate counts, path counts, coverage).
//!
//! A third report, `BENCH_edit.json`, measures raw edit throughput on the
//! transactional netlist: a burst of journaled rewires + appends applied
//! inside a transaction and rolled back (with maintained views attached),
//! versus reverting the same burst by discarding a full clone.
//!
//! A fourth report, `BENCH_serve.json`, saturates the `sft serve` daemon:
//! a batch of jobs is dropped into a job directory and drained once cold
//! (empty identification-cache image) and once warm (image persisted by
//! the cold run), at 1 worker and at all cores, reporting per-job p50/p99
//! latency and the outcome decision counts. The harness asserts the warm
//! daemon's result netlists are bit-identical to the cold ones.
//!
//! A fifth report, `BENCH_scale.json`, runs random-pattern stuck-at
//! campaigns on the scale tier — generated 10K–100K+ gate circuits (wide
//! multiplier, ALU datapath, deep random DAG, stitched multi-core
//! composition) — with three engines: the **classic reference** (one
//! 64-pattern block at a time, one event-driven cone propagation per
//! alive fault; reimplemented here so it stays the honest pre-wide-word
//! baseline), the production **wide** engine (explicit per-fault
//! propagation) at 1 thread, and the production **ctrace** engine
//! (critical-path tracing inside fanout-free regions plus
//! dominator-gated stem observability) at `--jobs` 1, 2, 4 and 8. All
//! three engines must return the bit-identical `CampaignResult` — the
//! ctrace check at every thread count doubles as the CI bit-identity
//! gate. The decision columns (`gates`, `faults`, `fault_classes`,
//! `faults_ctrace`, `faults_dom`, `detected`, `coverage`) are pinned by
//! `bench_check`, the timings are free.
//!
//! A sixth report, `BENCH_arena.json`, measures the flat-arena storage
//! layer on the scale-tier circuits: circuit construction time, the
//! Circuit→SoA campaign-entry conversion (legacy rebuild walk vs the
//! flat-pool fast path, and cold fault-table build vs the version-keyed
//! warm snapshot every campaign now enters through), and one step-budgeted
//! resynthesis pass. The warm snapshot must beat the cold per-campaign
//! build by >= 5x on the headline circuit; the arena shape columns
//! (`nodes`, `fanin_refs`, `interned_names`) and the resynthesis decisions
//! are pinned by `bench_check`.
//!
//! ```text
//! cargo bench --bench perf             # full suite
//! cargo bench --bench perf -- --quick  # 3-circuit smoke mode (CI)
//! cargo bench --bench perf -- --jobs 8 # explicit parallel thread count
//! ```
//!
//! The JSON is hand-rolled (the workspace vendors no serde); every row is
//! flat key/value so downstream tooling can `jq` it directly.

use sft::budget::Budget;
use sft::circuits::random::RandomCircuitConfig;
use sft::circuits::{gen, suite, suite_small, SuiteEntry};
use sft::core::{procedure2, resynthesize_with_budget, ResynthOptions};
use sft::netlist::{Circuit, GateKind, NodeId};
use sft::par::Jobs;
use sft::serve::{serve, ServeConfig, ServeSummary};
use sft::sim::{
    campaign, collapse, fault_list, pattern_block, CampaignConfig, CampaignResult, Fault,
    FaultSimTables, FaultSite, SimEngine, SoaCircuit,
};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

struct Config {
    quick: bool,
    jobs: Jobs,
    patterns: u64,
    out_dir: std::path::PathBuf,
}

impl Config {
    fn from_args() -> Config {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let quick = args.iter().any(|a| a == "--quick");
        let jobs = args
            .iter()
            .position(|a| a == "--jobs")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(Jobs::all_cores);
        Config {
            quick,
            jobs,
            patterns: if quick { 1 << 12 } else { 1 << 16 },
            out_dir: std::env::var_os("CARGO_MANIFEST_DIR")
                .map(Into::into)
                .unwrap_or_else(|| ".".into()),
        }
    }

    fn suite(&self) -> Vec<SuiteEntry> {
        if self.quick {
            suite_small()
        } else {
            suite()
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// One flat JSON object from `(key, rendered value)` pairs (values must
/// already be valid JSON fragments — numbers, booleans, quoted strings).
fn json_object(fields: &[(&str, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": {}", json_escape(k), v);
    }
    out.push('}');
    out
}

fn json_report(meta: &[(&str, String)], rows: &[String]) -> String {
    let mut out = String::from("{\n");
    for (k, v) in meta {
        let _ = writeln!(out, "  \"{}\": {},", json_escape(k), v);
    }
    out.push_str("  \"circuits\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(out, "    {row}{sep}");
    }
    out.push_str("  ]\n}\n");
    out
}

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Times `f` over `runs` runs and reports the fastest — the measurement,
/// not the mean of the measurement plus scheduler noise. Every run must
/// return the same value (the engines are deterministic), which doubles as
/// an extra identity check on the repeated rows.
fn time_best<R: PartialEq + std::fmt::Debug>(runs: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    let (reference, mut best) = time(&mut f);
    for _ in 1..runs {
        let (r, secs) = time(&mut f);
        assert_eq!(r, reference, "a timed computation must be deterministic across runs");
        best = best.min(secs);
    }
    (reference, best)
}

fn resynth_row(entry: &SuiteEntry, cfg: &Config) -> String {
    let opts = |jobs: Jobs| ResynthOptions {
        max_candidates_per_gate: if cfg.quick { 60 } else { 150 },
        jobs,
        ..ResynthOptions::default()
    };
    let run = |jobs: Jobs| {
        // Every timed run starts with cold identification tables: the
        // serial run must not pre-warm the parallel one (or the next
        // circuit), and the reported counters are per-run.
        sft::core::identify_cache_clear();
        let mut c = entry.circuit.clone();
        let (report, secs) = time(|| procedure2(&mut c, &opts(jobs)).expect("resynth verifies"));
        (c, report, secs, sft::core::identify_cache_stats())
    };
    let (serial_c, report, serial_secs, stats) = run(Jobs::serial());
    let (par_c, _, par_secs, _) = run(cfg.jobs);
    assert_eq!(serial_c, par_c, "{}: resynthesis must be thread-count invariant", entry.name);
    json_object(&[
        ("name", format!("\"{}\"", json_escape(entry.name))),
        ("gates_before", report.gates_before.to_string()),
        ("gates_after", report.gates_after.to_string()),
        ("paths_before", report.paths_before.to_string()),
        ("paths_after", report.paths_after.to_string()),
        ("replacements", report.replacements.to_string()),
        ("cache_hits", stats.hits.to_string()),
        ("cache_misses", stats.misses.to_string()),
        ("secs_1_thread", format!("{serial_secs:.4}")),
        ("secs_n_threads", format!("{par_secs:.4}")),
        ("speedup", format!("{:.3}", serial_secs / par_secs.max(1e-9))),
    ])
}

fn sim_row(entry: &SuiteEntry, cfg: &Config) -> String {
    let faults = fault_list(&entry.circuit);
    let campaign_cfg = |jobs: Jobs| CampaignConfig {
        max_patterns: cfg.patterns,
        plateau: 0,
        seed: 0x5f7,
        jobs,
        ..CampaignConfig::default()
    };
    // Best of three: campaigns finish in milliseconds, where one scheduler
    // hiccup would otherwise dominate the measured ratio.
    let run = |jobs: Jobs| -> (CampaignResult, f64) {
        let (mut best_r, mut best_secs) =
            time(|| campaign(&entry.circuit, &faults, &campaign_cfg(jobs)));
        for _ in 0..2 {
            let (r, secs) = time(|| campaign(&entry.circuit, &faults, &campaign_cfg(jobs)));
            assert_eq!(best_r, r, "{}: campaign must be run-to-run deterministic", entry.name);
            if secs < best_secs {
                best_secs = secs;
            }
            best_r = r;
        }
        (best_r, best_secs)
    };
    let (serial_r, serial_secs) = run(Jobs::serial());
    let (par_r, par_secs) = run(cfg.jobs);
    assert_eq!(serial_r, par_r, "{}: campaign must be thread-count invariant", entry.name);
    // The parallel engine must never lose to serial: speedup >= 0.9, with
    // 2ms of absolute slack so micro-campaign timer noise cannot fail the
    // bench.
    assert!(
        par_secs <= serial_secs / 0.9 + 0.002,
        "{}: parallel campaign regressed: {par_secs:.4}s at {} threads vs {serial_secs:.4}s serial",
        entry.name,
        cfg.jobs,
    );
    let c: &Circuit = &entry.circuit;
    json_object(&[
        ("name", format!("\"{}\"", json_escape(entry.name))),
        ("gates", c.two_input_gate_count().to_string()),
        ("paths", c.path_count().to_string()),
        ("faults", serial_r.total_faults.to_string()),
        ("detected", serial_r.detected.to_string()),
        ("coverage", format!("{:.4}", serial_r.coverage())),
        ("patterns_applied", serial_r.patterns_applied.to_string()),
        ("secs_1_thread", format!("{serial_secs:.4}")),
        ("secs_n_threads", format!("{par_secs:.4}")),
        ("speedup", format!("{:.3}", serial_secs / par_secs.max(1e-9))),
    ])
}

/// The deterministic edit burst, sized like one resynthesis candidate: up
/// to 32 gates are narrowed to a `Not` of their first fanin (always
/// acyclic — the fanin was already a fanin), with one `Buf` gate appended
/// per eight rewires. Keeping the burst small relative to the circuit is
/// the point of the comparison: journal rollback pays per edit, clone
/// revert pays per circuit node. Returns the number of journaled edits.
fn edit_burst(c: &mut Circuit) -> usize {
    const MAX_REWIRES: usize = 32;
    let len = c.len();
    let mut rewires = 0;
    let mut edits = 0;
    for i in 0..len {
        if rewires == MAX_REWIRES {
            break;
        }
        let id = sft::netlist::NodeId::from_index(i);
        let node = c.node(id);
        if !node.kind().is_gate() || node.fanins().is_empty() {
            continue;
        }
        let first = node.fanins()[0];
        c.rewire(id, GateKind::Not, vec![first]).expect("existing fanin cannot cycle");
        rewires += 1;
        edits += 1;
        if rewires % 8 == 0 {
            c.add_gate(GateKind::Buf, vec![first]).expect("fanin exists");
            edits += 1;
        }
    }
    edits
}

/// Journal-vs-clone edit throughput on one suite circuit. `secs_1_thread`
/// carries the journaled time so the shared `bench_check` regression gate
/// applies to it; `edits`, `nodes` and `restored` are decision fields (they
/// must be bit-identical run to run).
fn edit_row(entry: &SuiteEntry, cfg: &Config) -> String {
    let cycles: u32 = if cfg.quick { 100 } else { 400 };
    let mut c = entry.circuit.clone();
    c.enable_views();
    c.refresh_views();

    // Correctness first: one untimed cycle must restore the circuit (and
    // report how many edits a cycle journals).
    let pristine = c.clone();
    let cp = c.begin_edit();
    let edits = edit_burst(&mut c);
    c.rollback_to(cp);
    let restored = c == pristine;

    let (_, journal_secs) = time(|| {
        for _ in 0..cycles {
            let cp = c.begin_edit();
            let n = edit_burst(&mut c);
            assert_eq!(n, edits, "{}: edit burst must be deterministic", entry.name);
            c.rollback_to(cp);
        }
    });
    let (_, clone_secs) = time(|| {
        for _ in 0..cycles {
            let mut scratch = entry.circuit.clone();
            let n = edit_burst(&mut scratch);
            assert_eq!(n, edits, "{}: edit burst must be deterministic", entry.name);
            drop(scratch); // revert = discard the clone
        }
    });
    json_object(&[
        ("name", format!("\"{}\"", json_escape(entry.name))),
        ("nodes", entry.circuit.len().to_string()),
        ("edits", edits.to_string()),
        ("cycles", cycles.to_string()),
        ("restored", restored.to_string()),
        ("secs_1_thread", format!("{journal_secs:.4}")),
        ("secs_clone_revert", format!("{clone_secs:.4}")),
        ("journal_speedup", format!("{:.3}", clone_secs / journal_secs.max(1e-9))),
    ])
}

/// One drained daemon run over `n` jobs cycled from the suite. Returns the
/// final counters, the wall time, per-job latencies (ms, sorted), and the
/// result netlists keyed by file name (for bit-identity checks).
fn run_serve(
    root: PathBuf,
    cache: &Path,
    jobs: Jobs,
    entries: &[SuiteEntry],
    n: usize,
) -> (ServeSummary, f64, Vec<u64>, BTreeMap<String, String>) {
    let incoming = root.join("jobs/incoming");
    std::fs::create_dir_all(&incoming).expect("create incoming");
    for i in 0..n {
        let entry = &entries[i % entries.len()];
        let text = sft::netlist::bench_format::write(&entry.circuit);
        std::fs::write(incoming.join(format!("job{i:02}.bench")), text).expect("write bench");
        std::fs::write(incoming.join(format!("job{i:02}.job")), "objective = gates\n")
            .expect("write job");
    }
    let config = ServeConfig {
        jobs,
        queue: n, // no shedding: decision counts must be saturation-invariant
        once: true,
        cache: Some(cache.to_path_buf()),
        handle_signals: false,
        poll: Duration::from_millis(1),
        ..ServeConfig::new(&root)
    };
    let (summary, secs) = time(|| serve(&config).expect("serve drains"));
    let mut latencies = Vec::new();
    let mut outputs = BTreeMap::new();
    for entry in std::fs::read_dir(root.join("jobs/done")).expect("read done/") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().and_then(|s| s.to_str()).unwrap_or_default().to_string();
        let text = std::fs::read_to_string(&path).expect("read result");
        if name.ends_with(".report.json") {
            let ms = text
                .split("\"elapsed_ms\":")
                .nth(1)
                .and_then(|rest| {
                    rest.split(|c: char| !c.is_ascii_digit()).next()?.parse::<u64>().ok()
                })
                .expect("report carries elapsed_ms");
            latencies.push(ms);
        } else {
            outputs.insert(name, text);
        }
    }
    latencies.sort_unstable();
    (summary, secs, latencies, outputs)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Two rows — `serve_cold` and `serve_warm` — each measured serially (for
/// the regression gate's `secs_1_thread`) and at `cfg.jobs` workers (for
/// the saturation latencies). The outcome counts are decisions: they must
/// not depend on timing, cache temperature, or worker count.
fn serve_rows(entries: &[SuiteEntry], cfg: &Config) -> Vec<String> {
    let n = if cfg.quick { 6 } else { 24 };
    let scratch = std::env::temp_dir().join(format!("sft-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create scratch");
    let image = scratch.join("identify.sigcache");
    let spare = scratch.join("identify-cold-n.sigcache");

    // Cold: no image on disk, cleared in-process tables. The serial run
    // persists `image`, which the warm runs below will load.
    sft::core::identify_cache_clear();
    let (cold, cold_serial, _, cold_out) =
        run_serve(scratch.join("cold1"), &image, Jobs::serial(), entries, n);
    sft::core::identify_cache_clear();
    let (cold_n, cold_par, cold_lat, cold_out_n) =
        run_serve(scratch.join("coldn"), &spare, cfg.jobs, entries, n);
    assert_eq!(
        (cold.done, cold.failed, cold.shed),
        (cold_n.done, cold_n.failed, cold_n.shed),
        "serve outcomes must be worker-count invariant"
    );
    assert_eq!(cold_out, cold_out_n, "serve results must be worker-count invariant");

    // Warm: fresh process-state simulation (tables cleared), image loaded.
    sft::core::identify_cache_clear();
    let (warm, warm_serial, _, warm_out) =
        run_serve(scratch.join("warm1"), &image, Jobs::serial(), entries, n);
    sft::core::identify_cache_clear();
    let (warm_n, warm_par, warm_lat, warm_out_n) =
        run_serve(scratch.join("warmn"), &image, cfg.jobs, entries, n);
    assert!(warm.cache_loads >= 1, "warm run must load the persisted image");
    assert_eq!(cold_out, warm_out, "warm-cache results must be bit-identical to cold");
    assert_eq!(cold_out, warm_out_n, "warm-cache results must be bit-identical to cold");
    assert_eq!(
        (warm.done, warm.failed, warm.shed),
        (warm_n.done, warm_n.failed, warm_n.shed),
        "serve outcomes must be cache-temperature invariant"
    );

    let row = |name: &str, s: &ServeSummary, serial: f64, par: f64, lat: &[u64]| {
        json_object(&[
            ("name", format!("\"{name}\"")),
            ("jobs_submitted", n.to_string()),
            ("done", s.done.to_string()),
            ("failed", s.failed.to_string()),
            ("shed", s.shed.to_string()),
            ("cache_hits", s.cache.hits.to_string()),
            ("cache_misses", s.cache.misses.to_string()),
            ("cache_loaded_entries", s.cache_loaded_entries.to_string()),
            ("p50_ms", percentile(lat, 0.50).to_string()),
            ("p99_ms", percentile(lat, 0.99).to_string()),
            ("secs_1_thread", format!("{serial:.4}")),
            ("secs_n_threads", format!("{par:.4}")),
            ("speedup", format!("{:.3}", serial / par.max(1e-9))),
        ])
    };
    let rows = vec![
        row("serve_cold", &cold_n, cold_serial, cold_par, &cold_lat),
        row("serve_warm", &warm_n, warm_serial, warm_par, &warm_lat),
    ];
    let _ = std::fs::remove_dir_all(&scratch);
    rows
}

// ---------------------------------------------------------------------------
// Scale tier: generated 10K–100K+ gate circuits, classic engine vs the
// wide-word/fault-dropping engine across a thread curve.

/// The classic reference fault simulator: 64 patterns per block, good
/// values recomputed per block by one full topological sweep, and one
/// event-driven cone propagation per simulated fault (a `BinaryHeap` in
/// topological order, values overlaid on the good words). This is the
/// algorithm the production engine replaced; it lives here, reimplemented
/// against the public netlist API only, so the speedup column always
/// compares against the real baseline rather than against whatever the
/// production engine used to be.
struct ClassicSim {
    kinds: Vec<GateKind>,
    fanins: Vec<Vec<u32>>,
    fanouts: Vec<Vec<u32>>,
    topo: Vec<u32>,
    topo_pos: Vec<u32>,
    is_output: Vec<bool>,
    good: Vec<u64>,
    faulty: Vec<u64>,
    dirty: Vec<bool>,
    queued: Vec<bool>,
    touched: Vec<u32>,
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    scratch: Vec<u64>,
}

impl ClassicSim {
    fn new(circuit: &Circuit) -> ClassicSim {
        let n = circuit.len();
        let topo: Vec<u32> =
            circuit.topo_order().expect("acyclic").iter().map(|id| id.index() as u32).collect();
        let mut topo_pos = vec![0u32; n];
        for (pos, &id) in topo.iter().enumerate() {
            topo_pos[id as usize] = pos as u32;
        }
        let mut fanins = Vec::with_capacity(n);
        let mut kinds = Vec::with_capacity(n);
        let mut fanouts: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (id, node) in circuit.iter() {
            kinds.push(node.kind());
            fanins.push(node.fanins().iter().map(|f| f.index() as u32).collect::<Vec<u32>>());
            for f in node.fanins() {
                fanouts[f.index()].push(id.index() as u32);
            }
        }
        for consumers in &mut fanouts {
            consumers.dedup();
        }
        let mut is_output = vec![false; n];
        for o in circuit.outputs() {
            is_output[o.index()] = true;
        }
        ClassicSim {
            kinds,
            fanins,
            fanouts,
            topo,
            topo_pos,
            is_output,
            good: vec![0; n],
            faulty: vec![0; n],
            dirty: vec![false; n],
            queued: vec![false; n],
            touched: Vec::new(),
            heap: BinaryHeap::new(),
            scratch: Vec::new(),
        }
    }

    /// Loads one 64-pattern block: inputs take their words, everything else
    /// is recomputed in topological order.
    fn load_block(&mut self, inputs: &[NodeId], words: &[u64]) {
        for (&id, &w) in inputs.iter().zip(words) {
            self.good[id.index()] = w;
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        for pos in 0..self.topo.len() {
            let n = self.topo[pos] as usize;
            if self.kinds[n] == GateKind::Input {
                continue;
            }
            scratch.clear();
            for &f in &self.fanins[n] {
                scratch.push(self.good[f as usize]);
            }
            self.good[n] = self.kinds[n].eval_words(&scratch);
        }
        self.scratch = scratch;
    }

    fn value(&self, n: usize) -> u64 {
        if self.dirty[n] {
            self.faulty[n]
        } else {
            self.good[n]
        }
    }

    fn set(&mut self, n: usize, v: u64) {
        if !self.dirty[n] {
            self.dirty[n] = true;
            self.touched.push(n as u32);
        }
        self.faulty[n] = v;
    }

    fn schedule(&mut self, n: u32) {
        if !self.queued[n as usize] {
            self.queued[n as usize] = true;
            self.heap.push(Reverse((self.topo_pos[n as usize], n)));
        }
    }

    /// Detection mask of one fault under the loaded block.
    fn detect(&mut self, fault: Fault) -> u64 {
        let forced = if fault.stuck { !0u64 } else { 0 };
        let (root, out) = match fault.site {
            FaultSite::Stem(n) => (n.index(), forced),
            FaultSite::Branch { gate, pin } => {
                let g = gate.index();
                let mut scratch = std::mem::take(&mut self.scratch);
                scratch.clear();
                for (p, &f) in self.fanins[g].iter().enumerate() {
                    scratch.push(if p == pin as usize { forced } else { self.good[f as usize] });
                }
                let out = self.kinds[g].eval_words(&scratch);
                self.scratch = scratch;
                (g, out)
            }
        };
        if out == self.good[root] {
            return 0;
        }
        self.set(root, out);
        for i in 0..self.fanouts[root].len() {
            let c = self.fanouts[root][i];
            self.schedule(c);
        }
        while let Some(Reverse((_, n))) = self.heap.pop() {
            let n = n as usize;
            self.queued[n] = false;
            let mut scratch = std::mem::take(&mut self.scratch);
            scratch.clear();
            for &f in &self.fanins[n] {
                scratch.push(self.value(f as usize));
            }
            let out = self.kinds[n].eval_words(&scratch);
            self.scratch = scratch;
            if out != self.value(n) {
                self.set(n, out);
                for i in 0..self.fanouts[n].len() {
                    let c = self.fanouts[n][i];
                    self.schedule(c);
                }
            }
        }
        let mut detected = 0;
        for i in 0..self.touched.len() {
            let t = self.touched[i] as usize;
            if self.is_output[t] {
                detected |= self.faulty[t] ^ self.good[t];
            }
            self.dirty[t] = false;
        }
        self.touched.clear();
        detected
    }
}

/// The classic campaign loop: serial, 64-bit, detected faults dropped
/// after every block, with the same seeded pattern stream, first-detection
/// accounting and plateau rule as the production [`campaign`] — so the two
/// results can be asserted equal field by field.
fn classic_campaign(
    circuit: &Circuit,
    faults: &[Fault],
    config: &CampaignConfig,
) -> CampaignResult {
    let inputs = circuit.inputs().to_vec();
    let mut sim = ClassicSim::new(circuit);
    let mut detection: Vec<Option<u64>> = vec![None; faults.len()];
    let mut alive: Vec<u32> = (0..faults.len() as u32).collect();
    let mut last_effective: Option<u64> = None;
    let mut applied: u64 = 0;
    let mut block_index: u64 = 0;
    while applied < config.max_patterns && !alive.is_empty() {
        let offset = applied;
        let size = (config.max_patterns - offset).min(64);
        let size_mask = if size < 64 { (1u64 << size) - 1 } else { !0 };
        sim.load_block(&inputs, &pattern_block(config.seed, block_index, inputs.len()));
        alive.retain(|&fi| {
            let mask = sim.detect(faults[fi as usize]) & size_mask;
            if mask == 0 {
                return true;
            }
            let pattern = offset + u64::from(mask.trailing_zeros());
            detection[fi as usize] = Some(pattern);
            last_effective = Some(last_effective.map_or(pattern, |l| l.max(pattern)));
            false
        });
        applied = offset + size;
        block_index += 1;
        let plateaued = config.plateau > 0
            && match last_effective {
                Some(last) => applied - last > config.plateau,
                None => applied > config.plateau,
            };
        if plateaued {
            break;
        }
    }
    let detected = detection.iter().filter(|d| d.is_some()).count();
    CampaignResult {
        total_faults: faults.len(),
        detected,
        detection_pattern: detection,
        last_effective_pattern: last_effective,
        patterns_applied: applied,
    }
}

struct ScaleEntry {
    name: &'static str,
    circuit: Circuit,
    patterns: u64,
    /// The acceptance row: >= 100K gates, at 1 thread the wide engine
    /// must beat the classic engine by >= 2x and the ctrace engine must
    /// beat the wide engine by >= 1.5x.
    headline: bool,
}

/// The scale suite. Every entry is deterministic in its parameters, so the
/// decision columns can be pinned across machines. The stitched composition
/// is the headline: fault cones stay bounded by one core plus its checksum
/// path, which is exactly the shape where per-fault engines drown and
/// stem-grouped wide-word simulation pays off.
fn scale_suite(cfg: &Config) -> Vec<ScaleEntry> {
    let core = RandomCircuitConfig { inputs: 32, outputs: 16, gates: 260, window: 56, seed: 0xB1 };
    let entry =
        |name, circuit, patterns, headline| ScaleEntry { name, circuit, patterns, headline };
    if cfg.quick {
        vec![
            entry("mul32", gen::wide_multiplier(32), 128, false),
            // A shallower DAG: the old window-48 / 64-pattern row pinned
            // 0.22% coverage — a vacuous decision column that would pass
            // even if detection broke entirely. AND/OR-heavy chains lose
            // controllability exponentially with depth, so the quick row
            // trades depth for width (window 2000, 256 inputs) and reaches
            // ~18% coverage in 256 patterns — a pin that actually moves if
            // detection breaks.
            entry(
                "dag12k",
                gen::deep_dag(&RandomCircuitConfig {
                    inputs: 256,
                    outputs: 32,
                    gates: 12_000,
                    window: 2000,
                    seed: 3,
                }),
                256,
                false,
            ),
            entry("stitch48", gen::stitched(48, &core), 128, false),
        ]
    } else {
        vec![
            entry("mul96", gen::wide_multiplier(96), 1024, false),
            entry("alu2048", gen::alu(2048), 1024, false),
            entry(
                "dag60k",
                gen::deep_dag(&RandomCircuitConfig {
                    inputs: 64,
                    outputs: 32,
                    gates: 60_000,
                    window: 48,
                    seed: 3,
                }),
                256,
                false,
            ),
            entry("stitch420", gen::stitched(420, &core), 1024, true),
        ]
    }
}

fn scale_row(entry: &ScaleEntry, cfg: &Config) -> String {
    let faults = fault_list(&entry.circuit);
    let campaign_cfg = |jobs: Jobs, engine: SimEngine| CampaignConfig {
        max_patterns: entry.patterns,
        plateau: 0,
        seed: 0x5ca1e,
        jobs,
        engine,
        ..CampaignConfig::default()
    };
    // The headline row gates hard speedup asserts on single-shot wall
    // times; take the best of two runs there so a scheduler hiccup in
    // either engine's run cannot fail (or vacuously pass) the gate.
    let runs = if entry.headline { 2 } else { 1 };
    let (classic, classic_secs) = time_best(runs, || {
        classic_campaign(&entry.circuit, &faults, &campaign_cfg(Jobs::serial(), SimEngine::Wide))
    });
    let (wide, wide_secs) = time_best(runs, || {
        campaign(&entry.circuit, &faults, &campaign_cfg(Jobs::serial(), SimEngine::Wide))
    });
    assert_eq!(
        classic, wide,
        "{}: wide engine must match the classic reference bit for bit",
        entry.name
    );
    // The ctrace curve. Asserting bit identity at every thread count is the
    // engine's CI gate: on the quick tier this runs on every push.
    let mut secs_at = Vec::new();
    for jobs in [1usize, 2, 4, 8] {
        let j = if jobs == 1 { Jobs::serial() } else { Jobs::new(jobs) };
        let reps = if jobs == 1 { runs } else { 1 };
        let (r, secs) = time_best(reps, || {
            campaign(&entry.circuit, &faults, &campaign_cfg(j, SimEngine::Ctrace))
        });
        assert_eq!(
            classic, r,
            "{}: ctrace engine at {jobs} job(s) must match the classic reference bit for bit",
            entry.name
        );
        secs_at.push(secs);
    }
    // Static structural decision columns: how much of the fault list each
    // layer of the engine resolves. A fault's deviation is injected at its
    // site gate; interior sites resolve through the shared critical-path
    // trace, and sites whose FFR root has a proper dominator are eligible
    // for the cached-observability shortcut.
    let soa = SoaCircuit::new(&entry.circuit);
    let site = |f: &Fault| match f.site {
        FaultSite::Stem(n) => n.index(),
        FaultSite::Branch { gate, .. } => gate.index(),
    };
    let fault_classes = collapse(&entry.circuit, &faults).len();
    let faults_ctrace = faults.iter().filter(|f| soa.ffr_interior(site(f))).count();
    let faults_dom = faults.iter().filter(|f| soa.idom(soa.ffr_root(site(f))).is_some()).count();
    let gates = entry.circuit.two_input_gate_count();
    let speedup_wide_vs_classic_1t = classic_secs / wide_secs.max(1e-9);
    let speedup_ctrace_vs_wide_1t = wide_secs / secs_at[0].max(1e-9);
    if entry.headline {
        assert!(gates >= 100_000, "{}: headline row shrank to {gates} gates", entry.name);
        assert!(
            cfg.quick || speedup_wide_vs_classic_1t >= 2.0,
            "{}: wide engine at 1 thread is only {speedup_wide_vs_classic_1t:.2}x over the \
             classic serial engine (need >= 2.0x)",
            entry.name
        );
        assert!(
            cfg.quick || speedup_ctrace_vs_wide_1t >= 1.5,
            "{}: ctrace engine at 1 thread is only {speedup_ctrace_vs_wide_1t:.2}x over the \
             wide engine (need >= 1.5x)",
            entry.name
        );
    }
    json_object(&[
        ("name", format!("\"{}\"", json_escape(entry.name))),
        ("gates", gates.to_string()),
        ("faults", classic.total_faults.to_string()),
        ("fault_classes", fault_classes.to_string()),
        ("faults_ctrace", faults_ctrace.to_string()),
        ("faults_dom", faults_dom.to_string()),
        ("detected", classic.detected.to_string()),
        ("coverage", format!("{:.4}", classic.coverage())),
        ("patterns_applied", classic.patterns_applied.to_string()),
        ("secs_classic_1_thread", format!("{classic_secs:.4}")),
        ("secs_wide_1_thread", format!("{wide_secs:.4}")),
        ("secs_1_thread", format!("{:.4}", secs_at[0])),
        ("secs_2_threads", format!("{:.4}", secs_at[1])),
        ("secs_4_threads", format!("{:.4}", secs_at[2])),
        ("secs_8_threads", format!("{:.4}", secs_at[3])),
        ("speedup_wide_vs_classic_1t", format!("{speedup_wide_vs_classic_1t:.3}")),
        ("speedup_ctrace_vs_wide_1t", format!("{speedup_ctrace_vs_wide_1t:.3}")),
        ("scaling_4_threads", format!("{:.3}", secs_at[0] / secs_at[2].max(1e-9))),
    ])
}

// ---------------------------------------------------------------------------
// Arena tier: flat-arena construction and the campaign-entry conversion.

/// Times `f` over `runs` runs and reports the fastest, discarding results
/// (for conversions whose output type carries no `PartialEq`).
fn best_secs<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let (r, secs) = time(&mut f);
        std::hint::black_box(&r);
        best = best.min(secs);
    }
    best
}

/// One arena row: build the circuit (timed — construction is pure arena
/// appends plus one normalize/sweep), measure the Circuit→SoA conversion
/// both ways, measure the campaign-entry cost cold (a full fault-table
/// build, what every campaign used to pay) and warm (the version-keyed
/// snapshot campaigns now enter through), and run one step-budgeted serial
/// resynthesis pass over the arena.
///
/// `secs_1_thread` carries the resynthesis-pass time (the longest, most
/// stable timing) for the shared `bench_check` regression gate; the
/// conversion columns ride along, and the headline row hard-asserts the
/// >= 5x campaign-entry win.
fn arena_row(name: &str, build: impl Fn() -> Circuit, headline: bool, cfg: &Config) -> String {
    let (circuit, build_secs) = time(&build);
    let mem = circuit.memory_stats();
    assert!(circuit.fanin_spans_flat(), "{name}: generators end swept, pool must be flat");

    let runs = 3;
    let soa_rebuild_secs = best_secs(runs, || SoaCircuit::rebuild(&circuit));
    let soa_new_secs = best_secs(runs, || SoaCircuit::new(&circuit));
    let entry_cold_secs = best_secs(runs, || FaultSimTables::new(&circuit));
    // Prime the snapshot slot, then measure the warm path campaigns hit.
    let primed = FaultSimTables::snapshot(&circuit);
    const WARM_CALLS: usize = 512;
    let (_, warm_total) = time(|| {
        for _ in 0..WARM_CALLS {
            std::hint::black_box(FaultSimTables::snapshot(&circuit));
        }
    });
    let entry_warm_secs = warm_total / WARM_CALLS as f64;
    drop(primed);
    let speedup_entry = entry_cold_secs / entry_warm_secs.max(1e-12);
    if headline {
        assert!(
            speedup_entry >= 5.0,
            "{name}: warm campaign entry is only {speedup_entry:.2}x over the cold \
             per-campaign build (need >= 5.0x)"
        );
    }

    let mut c = circuit.clone();
    let opts = ResynthOptions {
        max_candidates_per_gate: 20,
        jobs: Jobs::serial(),
        ..ResynthOptions::default()
    };
    let budget = Budget::unlimited().with_step_limit(if cfg.quick { 2_000 } else { 20_000 });
    let (report, resynth_secs) =
        time(|| resynthesize_with_budget(&mut c, &opts, &budget).expect("resynth verifies"));

    json_object(&[
        ("name", format!("\"{}\"", json_escape(name))),
        ("nodes", mem.nodes.to_string()),
        ("fanin_refs", mem.pool_live.to_string()),
        ("interned_names", mem.interned_names.to_string()),
        ("bytes_per_node", format!("{:.1}", mem.bytes_per_node())),
        ("replacements", report.replacements.to_string()),
        ("gates_after", report.gates_after.to_string()),
        ("secs_build", format!("{build_secs:.4}")),
        ("secs_soa_rebuild", format!("{soa_rebuild_secs:.4}")),
        ("secs_soa_new", format!("{soa_new_secs:.4}")),
        ("secs_entry_cold", format!("{entry_cold_secs:.4}")),
        ("secs_entry_warm", format!("{entry_warm_secs:.9}")),
        ("speedup_entry_warm_vs_cold", format!("{speedup_entry:.1}")),
        ("secs_1_thread", format!("{resynth_secs:.4}")),
    ])
}

fn arena_rows(cfg: &Config) -> Vec<String> {
    let core = RandomCircuitConfig { inputs: 32, outputs: 16, gates: 260, window: 56, seed: 0xB1 };
    if cfg.quick {
        vec![
            arena_row(
                "dag12k",
                || {
                    gen::deep_dag(&RandomCircuitConfig {
                        inputs: 256,
                        outputs: 32,
                        gates: 12_000,
                        window: 2000,
                        seed: 3,
                    })
                },
                false,
                cfg,
            ),
            arena_row("stitch48", || gen::stitched(48, &core), true, cfg),
        ]
    } else {
        vec![
            arena_row(
                "dag60k",
                || {
                    gen::deep_dag(&RandomCircuitConfig {
                        inputs: 64,
                        outputs: 32,
                        gates: 60_000,
                        window: 48,
                        seed: 3,
                    })
                },
                false,
                cfg,
            ),
            arena_row("stitch420", || gen::stitched(420, &core), true, cfg),
        ]
    }
}

fn main() {
    let cfg = Config::from_args();
    let entries = cfg.suite();
    let meta = |kind: &str| {
        vec![
            ("benchmark", format!("\"{kind}\"")),
            ("threads", cfg.jobs.get().to_string()),
            ("quick", cfg.quick.to_string()),
        ]
    };

    eprintln!(
        "perf: {} circuits, 1 vs {} thread(s), {} patterns{}",
        entries.len(),
        cfg.jobs,
        cfg.patterns,
        if cfg.quick { " (quick)" } else { "" }
    );

    let resynth_rows: Vec<String> = entries
        .iter()
        .map(|e| {
            eprintln!("  resynth {}", e.name);
            resynth_row(e, &cfg)
        })
        .collect();
    let resynth_path = cfg.out_dir.join("BENCH_resynth.json");
    std::fs::write(&resynth_path, json_report(&meta("resynth"), &resynth_rows))
        .expect("write BENCH_resynth.json");
    eprintln!("wrote {}", resynth_path.display());

    let sim_rows: Vec<String> = entries
        .iter()
        .map(|e| {
            eprintln!("  campaign {}", e.name);
            sim_row(e, &cfg)
        })
        .collect();
    let sim_path = cfg.out_dir.join("BENCH_sim.json");
    std::fs::write(&sim_path, json_report(&meta("sim"), &sim_rows)).expect("write BENCH_sim.json");
    eprintln!("wrote {}", sim_path.display());

    let edit_rows: Vec<String> = entries
        .iter()
        .map(|e| {
            eprintln!("  edits {}", e.name);
            edit_row(e, &cfg)
        })
        .collect();
    let edit_path = cfg.out_dir.join("BENCH_edit.json");
    std::fs::write(&edit_path, json_report(&meta("edit"), &edit_rows))
        .expect("write BENCH_edit.json");
    eprintln!("wrote {}", edit_path.display());

    eprintln!("  serve saturation (cold + warm)");
    let serve_report_rows = serve_rows(&entries, &cfg);
    let serve_path = cfg.out_dir.join("BENCH_serve.json");
    std::fs::write(&serve_path, json_report(&meta("serve"), &serve_report_rows))
        .expect("write BENCH_serve.json");
    eprintln!("wrote {}", serve_path.display());

    let scale_rows: Vec<String> = scale_suite(&cfg)
        .iter()
        .map(|e| {
            eprintln!("  scale {} ({} patterns)", e.name, e.patterns);
            scale_row(e, &cfg)
        })
        .collect();
    let scale_path = cfg.out_dir.join("BENCH_scale.json");
    std::fs::write(&scale_path, json_report(&meta("scale"), &scale_rows))
        .expect("write BENCH_scale.json");
    eprintln!("wrote {}", scale_path.display());

    eprintln!("  arena (build + campaign-entry conversion + budgeted resynth)");
    let arena_report_rows = arena_rows(&cfg);
    let arena_path = cfg.out_dir.join("BENCH_arena.json");
    std::fs::write(&arena_path, json_report(&meta("arena"), &arena_report_rows))
        .expect("write BENCH_arena.json");
    eprintln!("wrote {}", arena_path.display());
}
