//! Parallel-scaling benchmark harness.
//!
//! Runs the two parallel hot paths — Procedure-2 resynthesis (candidate
//! scoring) and the random-pattern stuck-at campaign (pattern blocks) — on
//! the bundled benchmark suite at 1 thread and at all cores, checks that
//! both thread counts produce bit-identical results, and writes machine-
//! readable reports to `BENCH_resynth.json` and `BENCH_sim.json` (wall
//! time per thread count, speedup, gate counts, path counts, coverage).
//!
//! A third report, `BENCH_edit.json`, measures raw edit throughput on the
//! transactional netlist: a burst of journaled rewires + appends applied
//! inside a transaction and rolled back (with maintained views attached),
//! versus reverting the same burst by discarding a full clone.
//!
//! ```text
//! cargo bench --bench perf             # full suite
//! cargo bench --bench perf -- --quick  # 3-circuit smoke mode (CI)
//! cargo bench --bench perf -- --jobs 8 # explicit parallel thread count
//! ```
//!
//! The JSON is hand-rolled (the workspace vendors no serde); every row is
//! flat key/value so downstream tooling can `jq` it directly.

use sft::circuits::{suite, suite_small, SuiteEntry};
use sft::core::{procedure2, ResynthOptions};
use sft::netlist::{Circuit, GateKind};
use sft::par::Jobs;
use sft::sim::{campaign, fault_list, CampaignConfig, CampaignResult};
use std::fmt::Write as _;
use std::time::Instant;

struct Config {
    quick: bool,
    jobs: Jobs,
    patterns: u64,
    out_dir: std::path::PathBuf,
}

impl Config {
    fn from_args() -> Config {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let quick = args.iter().any(|a| a == "--quick");
        let jobs = args
            .iter()
            .position(|a| a == "--jobs")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(Jobs::all_cores);
        Config {
            quick,
            jobs,
            patterns: if quick { 1 << 12 } else { 1 << 16 },
            out_dir: std::env::var_os("CARGO_MANIFEST_DIR")
                .map(Into::into)
                .unwrap_or_else(|| ".".into()),
        }
    }

    fn suite(&self) -> Vec<SuiteEntry> {
        if self.quick {
            suite_small()
        } else {
            suite()
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// One flat JSON object from `(key, rendered value)` pairs (values must
/// already be valid JSON fragments — numbers, booleans, quoted strings).
fn json_object(fields: &[(&str, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": {}", json_escape(k), v);
    }
    out.push('}');
    out
}

fn json_report(meta: &[(&str, String)], rows: &[String]) -> String {
    let mut out = String::from("{\n");
    for (k, v) in meta {
        let _ = writeln!(out, "  \"{}\": {},", json_escape(k), v);
    }
    out.push_str("  \"circuits\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(out, "    {row}{sep}");
    }
    out.push_str("  ]\n}\n");
    out
}

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

fn resynth_row(entry: &SuiteEntry, cfg: &Config) -> String {
    let opts = |jobs: Jobs| ResynthOptions {
        max_candidates_per_gate: if cfg.quick { 60 } else { 150 },
        jobs,
        ..ResynthOptions::default()
    };
    let run = |jobs: Jobs| {
        // Every timed run starts with cold identification tables: the
        // serial run must not pre-warm the parallel one (or the next
        // circuit), and the reported counters are per-run.
        sft::core::identify_cache_clear();
        let mut c = entry.circuit.clone();
        let (report, secs) = time(|| procedure2(&mut c, &opts(jobs)).expect("resynth verifies"));
        (c, report, secs, sft::core::identify_cache_stats())
    };
    let (serial_c, report, serial_secs, stats) = run(Jobs::serial());
    let (par_c, _, par_secs, _) = run(cfg.jobs);
    assert_eq!(serial_c, par_c, "{}: resynthesis must be thread-count invariant", entry.name);
    json_object(&[
        ("name", format!("\"{}\"", json_escape(entry.name))),
        ("gates_before", report.gates_before.to_string()),
        ("gates_after", report.gates_after.to_string()),
        ("paths_before", report.paths_before.to_string()),
        ("paths_after", report.paths_after.to_string()),
        ("replacements", report.replacements.to_string()),
        ("cache_hits", stats.hits.to_string()),
        ("cache_misses", stats.misses.to_string()),
        ("secs_1_thread", format!("{serial_secs:.4}")),
        ("secs_n_threads", format!("{par_secs:.4}")),
        ("speedup", format!("{:.3}", serial_secs / par_secs.max(1e-9))),
    ])
}

fn sim_row(entry: &SuiteEntry, cfg: &Config) -> String {
    let faults = fault_list(&entry.circuit);
    let campaign_cfg = |jobs: Jobs| CampaignConfig {
        max_patterns: cfg.patterns,
        plateau: 0,
        seed: 0x5f7,
        jobs,
        ..CampaignConfig::default()
    };
    // Best of three: campaigns finish in milliseconds, where one scheduler
    // hiccup would otherwise dominate the measured ratio.
    let run = |jobs: Jobs| -> (CampaignResult, f64) {
        let (mut best_r, mut best_secs) =
            time(|| campaign(&entry.circuit, &faults, &campaign_cfg(jobs)));
        for _ in 0..2 {
            let (r, secs) = time(|| campaign(&entry.circuit, &faults, &campaign_cfg(jobs)));
            assert_eq!(best_r, r, "{}: campaign must be run-to-run deterministic", entry.name);
            if secs < best_secs {
                best_secs = secs;
            }
            best_r = r;
        }
        (best_r, best_secs)
    };
    let (serial_r, serial_secs) = run(Jobs::serial());
    let (par_r, par_secs) = run(cfg.jobs);
    assert_eq!(serial_r, par_r, "{}: campaign must be thread-count invariant", entry.name);
    // The parallel engine must never lose to serial: speedup >= 0.9, with
    // 2ms of absolute slack so micro-campaign timer noise cannot fail the
    // bench.
    assert!(
        par_secs <= serial_secs / 0.9 + 0.002,
        "{}: parallel campaign regressed: {par_secs:.4}s at {} threads vs {serial_secs:.4}s serial",
        entry.name,
        cfg.jobs,
    );
    let c: &Circuit = &entry.circuit;
    json_object(&[
        ("name", format!("\"{}\"", json_escape(entry.name))),
        ("gates", c.two_input_gate_count().to_string()),
        ("paths", c.path_count().to_string()),
        ("faults", serial_r.total_faults.to_string()),
        ("detected", serial_r.detected.to_string()),
        ("coverage", format!("{:.4}", serial_r.coverage())),
        ("patterns_applied", serial_r.patterns_applied.to_string()),
        ("secs_1_thread", format!("{serial_secs:.4}")),
        ("secs_n_threads", format!("{par_secs:.4}")),
        ("speedup", format!("{:.3}", serial_secs / par_secs.max(1e-9))),
    ])
}

/// The deterministic edit burst, sized like one resynthesis candidate: up
/// to 32 gates are narrowed to a `Not` of their first fanin (always
/// acyclic — the fanin was already a fanin), with one `Buf` gate appended
/// per eight rewires. Keeping the burst small relative to the circuit is
/// the point of the comparison: journal rollback pays per edit, clone
/// revert pays per circuit node. Returns the number of journaled edits.
fn edit_burst(c: &mut Circuit) -> usize {
    const MAX_REWIRES: usize = 32;
    let len = c.len();
    let mut rewires = 0;
    let mut edits = 0;
    for i in 0..len {
        if rewires == MAX_REWIRES {
            break;
        }
        let id = sft::netlist::NodeId::from_index(i);
        let node = c.node(id);
        if !node.kind().is_gate() || node.fanins().is_empty() {
            continue;
        }
        let first = node.fanins()[0];
        c.rewire(id, GateKind::Not, vec![first]).expect("existing fanin cannot cycle");
        rewires += 1;
        edits += 1;
        if rewires % 8 == 0 {
            c.add_gate(GateKind::Buf, vec![first]).expect("fanin exists");
            edits += 1;
        }
    }
    edits
}

/// Journal-vs-clone edit throughput on one suite circuit. `secs_1_thread`
/// carries the journaled time so the shared `bench_check` regression gate
/// applies to it; `edits`, `nodes` and `restored` are decision fields (they
/// must be bit-identical run to run).
fn edit_row(entry: &SuiteEntry, cfg: &Config) -> String {
    let cycles: u32 = if cfg.quick { 100 } else { 400 };
    let mut c = entry.circuit.clone();
    c.enable_views();
    c.refresh_views();

    // Correctness first: one untimed cycle must restore the circuit (and
    // report how many edits a cycle journals).
    let pristine = c.clone();
    let cp = c.begin_edit();
    let edits = edit_burst(&mut c);
    c.rollback_to(cp);
    let restored = c == pristine;

    let (_, journal_secs) = time(|| {
        for _ in 0..cycles {
            let cp = c.begin_edit();
            let n = edit_burst(&mut c);
            assert_eq!(n, edits, "{}: edit burst must be deterministic", entry.name);
            c.rollback_to(cp);
        }
    });
    let (_, clone_secs) = time(|| {
        for _ in 0..cycles {
            let mut scratch = entry.circuit.clone();
            let n = edit_burst(&mut scratch);
            assert_eq!(n, edits, "{}: edit burst must be deterministic", entry.name);
            drop(scratch); // revert = discard the clone
        }
    });
    json_object(&[
        ("name", format!("\"{}\"", json_escape(entry.name))),
        ("nodes", entry.circuit.len().to_string()),
        ("edits", edits.to_string()),
        ("cycles", cycles.to_string()),
        ("restored", restored.to_string()),
        ("secs_1_thread", format!("{journal_secs:.4}")),
        ("secs_clone_revert", format!("{clone_secs:.4}")),
        ("journal_speedup", format!("{:.3}", clone_secs / journal_secs.max(1e-9))),
    ])
}

fn main() {
    let cfg = Config::from_args();
    let entries = cfg.suite();
    let meta = |kind: &str| {
        vec![
            ("benchmark", format!("\"{kind}\"")),
            ("threads", cfg.jobs.get().to_string()),
            ("quick", cfg.quick.to_string()),
        ]
    };

    eprintln!(
        "perf: {} circuits, 1 vs {} thread(s), {} patterns{}",
        entries.len(),
        cfg.jobs,
        cfg.patterns,
        if cfg.quick { " (quick)" } else { "" }
    );

    let resynth_rows: Vec<String> = entries
        .iter()
        .map(|e| {
            eprintln!("  resynth {}", e.name);
            resynth_row(e, &cfg)
        })
        .collect();
    let resynth_path = cfg.out_dir.join("BENCH_resynth.json");
    std::fs::write(&resynth_path, json_report(&meta("resynth"), &resynth_rows))
        .expect("write BENCH_resynth.json");
    eprintln!("wrote {}", resynth_path.display());

    let sim_rows: Vec<String> = entries
        .iter()
        .map(|e| {
            eprintln!("  campaign {}", e.name);
            sim_row(e, &cfg)
        })
        .collect();
    let sim_path = cfg.out_dir.join("BENCH_sim.json");
    std::fs::write(&sim_path, json_report(&meta("sim"), &sim_rows)).expect("write BENCH_sim.json");
    eprintln!("wrote {}", sim_path.display());

    let edit_rows: Vec<String> = entries
        .iter()
        .map(|e| {
            eprintln!("  edits {}", e.name);
            edit_row(e, &cfg)
        })
        .collect();
    let edit_path = cfg.out_dir.join("BENCH_edit.json");
    std::fs::write(&edit_path, json_report(&meta("edit"), &edit_rows))
        .expect("write BENCH_edit.json");
    eprintln!("wrote {}", edit_path.display());
}
